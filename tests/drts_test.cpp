// Tests for the DRTS services (S11): time service, monitor, process
// control, error log — including the §6.1 recursion scenario.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/testbed.h"
#include "drts/error_log.h"
#include "drts/monitor.h"
#include "drts/process_control.h"
#include "drts/time_service.h"

namespace ntcs::drts {
namespace {

using namespace std::chrono_literals;
using convert::Arch;
using core::Testbed;

struct Rig {
  Testbed tb;

  Rig() {
    tb.net("lan");
    tb.machine("vax1", Arch::vax780, {"lan"});
    tb.machine("sun1", Arch::sun3, {"lan"});
    tb.machine("apollo1", Arch::apollo_dn330, {"lan"});
    EXPECT_TRUE(tb.start_name_server("vax1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
  }
};

core::NodeConfig service_cfg(Rig& rig, const std::string& machine) {
  return rig.tb.node_config("", machine, "lan");
}

TEST(TimeService, CorrectsClockSkew) {
  Rig rig;
  // sun1's clock is 2 seconds ahead of vax1's.
  rig.tb.fabric().set_clock_offset(rig.tb.machine_id("sun1"), 2s);

  TimeServer server(service_cfg(rig, "sun1"));
  ASSERT_TRUE(server.start().ok());

  auto client_node = rig.tb.spawn_module("clienty", "vax1", "lan").value();
  TimeClient client(*client_node);
  ASSERT_TRUE(client.sync(5).ok());
  // The estimated offset should be close to +2s (RTT is microseconds).
  EXPECT_NEAR(static_cast<double>(client.offset_ns()), 2e9, 5e7);

  const std::int64_t corrected = client.corrected_now_ns();
  const std::int64_t server_now =
      rig.tb.fabric().machine_now(rig.tb.machine_id("sun1")).count();
  EXPECT_NEAR(static_cast<double>(corrected),
              static_cast<double>(server_now), 5e7);
  EXPECT_GT(server.requests_served(), 0u);
  client_node->stop();
}

TEST(TimeService, LazySyncOnFirstUse) {
  Rig rig;
  TimeServer server(service_cfg(rig, "sun1"));
  ASSERT_TRUE(server.start().ok());
  auto node = rig.tb.spawn_module("lazy", "vax1", "lan").value();
  TimeClient client(*node);
  EXPECT_FALSE(client.synced());
  (void)client.corrected_now_ns();
  EXPECT_TRUE(client.synced());
  EXPECT_EQ(client.syncs_performed(), 1u);
  node->stop();
}

TEST(TimeService, SyncFailsWithoutServer) {
  Rig rig;
  auto node = rig.tb.spawn_module("alone", "vax1", "lan").value();
  TimeClient client(*node);
  EXPECT_EQ(client.sync().code(), Errc::not_found);
  node->stop();
}

TEST(Monitor, CollectsSamplesFromHook) {
  Rig rig;
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());

  auto sender = rig.tb.spawn_module("sender", "vax1", "lan").value();
  auto sink = rig.tb.spawn_module("sink", "sun1", "lan").value();
  MonitorClient mc(*sender);
  sender->lcm().set_monitor_hook(mc.hook());

  auto dst = sender->commod().locate("sink").value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sender->commod().send(dst, to_bytes("payload")).ok());
  }
  // Datagrams are asynchronous; wait for arrival.
  for (int spin = 0; spin < 100 && monitor.sample_count() < 5; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(monitor.sample_count(), 5u);
  EXPECT_EQ(monitor.total_bytes(), 5u * 7);  // "payload" is 7 bytes
  EXPECT_EQ(mc.emitted(), 5u);
  auto samples = monitor.samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0].src, sender->identity().uadd().raw());
  EXPECT_EQ(samples[0].dst, dst.raw());
  sender->stop();
  sink->stop();
}

TEST(Monitor, MonitoringIsNotMonitored) {
  // §6.1: "time correction and monitoring are disabled here, to avoid the
  // obvious infinite recursion" — NSP and monitor traffic must not
  // generate further samples.
  Rig rig;
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());
  auto sender = rig.tb.spawn_module("s2", "vax1", "lan").value();
  auto sink = rig.tb.spawn_module("k2", "sun1", "lan").value();
  MonitorClient mc(*sender);
  sender->lcm().set_monitor_hook(mc.hook());
  auto dst = sender->commod().locate("k2").value();
  ASSERT_TRUE(sender->commod().send(dst, to_bytes("one")).ok());
  std::this_thread::sleep_for(50ms);
  // Exactly one sample despite the recursive monitor dgram and the NSP
  // locate that preceded it.
  EXPECT_EQ(monitor.sample_count(), 1u);
  sender->stop();
  sink->stop();
}

TEST(Monitor, RemoteQuery) {
  Rig rig;
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());
  auto sender = rig.tb.spawn_module("s3", "vax1", "lan").value();
  auto sink = rig.tb.spawn_module("k3", "sun1", "lan").value();
  MonitorClient mc(*sender);
  sender->lcm().set_monitor_hook(mc.hook());
  auto dst = sender->commod().locate("k3").value();
  ASSERT_TRUE(sender->commod().send(dst, to_bytes("x")).ok());
  for (int spin = 0; spin < 100 && monitor.sample_count() < 1; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  auto mon_addr = sender->commod().locate(kMonitorName).value();
  auto summary = query_monitor(*sender, mon_addr);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().count, 1u);
  sender->stop();
  sink->stop();
}

TEST(Monitor, MetricsQueryOverNtcsMatchesLocalSnapshot) {
  // The per-layer metrics registry is served through the same statistics
  // protocol as the traffic summary: a remote module's query must see the
  // numbers a local snapshot() sees. Compared on the metrics the query
  // itself cannot perturb — its own traffic is internal end to end, so the
  // monitored-send counters hold still between the two captures.
  Rig rig;
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());
  auto sender = rig.tb.spawn_module("mq-s", "vax1", "lan").value();
  auto sink = rig.tb.spawn_module("mq-k", "sun1", "lan").value();
  auto dst = sender->commod().locate("mq-k").value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sender->commod().send(dst, to_bytes("counted")).ok());
    ASSERT_TRUE(sink->commod().receive(1s).ok());
  }
  auto mon_addr = sender->commod().locate(kMonitorName).value();

  metrics::Snapshot local = metrics::MetricsRegistry::instance().snapshot();
  auto remote = query_metrics(*sender, mon_addr);
  ASSERT_TRUE(remote.ok());
  for (const char* name :
       {"lcm.sends", "lcm.dgrams", "lcm.requests", "ip.hops_forwarded"}) {
    EXPECT_EQ(remote.value().value(name), local.value(name)) << name;
  }
  EXPECT_GE(remote.value().value("lcm.sends"), 4u);
  // Histograms round-trip through the wire encoding intact.
  const metrics::MetricValue* lh = local.find("ali.recv_wait_ns");
  const metrics::MetricValue* rh = remote.value().find("ali.recv_wait_ns");
  ASSERT_NE(lh, nullptr);
  ASSERT_NE(rh, nullptr);
  EXPECT_EQ(rh->kind, metrics::MetricKind::histogram);
  EXPECT_EQ(rh->count, lh->count);
  EXPECT_EQ(rh->sum, lh->sum);
  EXPECT_EQ(rh->buckets, lh->buckets);
  sender->stop();
  sink->stop();
}

TEST(Monitor, MonitorTrafficNeverIncrementsMonitoredSendMetrics) {
  // §6.1 extended to metrics: the monitor sample datagram (and the NSP
  // locate it may trigger) is internal traffic, counted under
  // lcm.internal_sends — never under the lcm.sends/dgrams the monitor
  // exists to observe. Otherwise observing traffic would create traffic.
  Rig rig;
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());
  auto sender = rig.tb.spawn_module("ng-s", "vax1", "lan").value();
  auto sink = rig.tb.spawn_module("ng-k", "sun1", "lan").value();
  MonitorClient mc(*sender);
  sender->lcm().set_monitor_hook(mc.hook());
  auto dst = sender->commod().locate("ng-k").value();

  metrics::Snapshot before = metrics::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(sender->commod().send(dst, to_bytes("watched")).ok());
  ASSERT_TRUE(sink->commod().receive(1s).ok());
  for (int spin = 0; spin < 100 && mc.emitted() < 1; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(mc.emitted(), 1u);
  metrics::Snapshot d =
      metrics::MetricsRegistry::instance().snapshot().delta(before);
  // One app send was observed; the observation itself (a dgram, plus the
  // monitor-locating NSP request) shows up only in the internal counter.
  EXPECT_EQ(d.value("lcm.sends"), 1u);
  EXPECT_EQ(d.value("lcm.dgrams"), 0u);
  EXPECT_EQ(d.value("lcm.requests"), 0u);
  EXPECT_GE(d.value("lcm.internal_sends"), 1u);
  sender->stop();
  sink->stop();
}

TEST(Monitor, PairStatsAggregatePerConversation) {
  Rig rig;
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());
  auto sender = rig.tb.spawn_module("ps", "vax1", "lan").value();
  auto sink1 = rig.tb.spawn_module("sink1", "sun1", "lan").value();
  auto sink2 = rig.tb.spawn_module("sink2", "sun1", "lan").value();
  MonitorClient mc(*sender);
  sender->lcm().set_monitor_hook(mc.hook());
  TimeClient tc(*sender);  // timestamps needed for rate projection
  TimeServer ts(service_cfg(rig, "sun1"));
  ASSERT_TRUE(ts.start().ok());
  sender->lcm().set_time_source(tc.source());

  auto d1 = sender->commod().locate("sink1").value();
  auto d2 = sender->commod().locate("sink2").value();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sender->commod().send(d1, to_bytes("xx")).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sender->commod().send(d2, to_bytes("yyyy")).ok());
  }
  for (int spin = 0; spin < 100 && monitor.sample_count() < 9; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  auto p1 = monitor.pair(sender->commod().self().raw(), d1.raw());
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->count, 6u);
  EXPECT_EQ(p1->bytes, 12u);
  EXPECT_GT(p1->rate_per_sec(), 0.0);  // projection from timestamps
  auto p2 = monitor.pair(sender->commod().self().raw(), d2.raw());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->count, 3u);
  EXPECT_EQ(p2->bytes, 12u);
  EXPECT_EQ(monitor.pair_stats().size(), 2u);
  // The report names both conversations.
  const std::string report = monitor.report();
  EXPECT_NE(report.find("U#"), std::string::npos);
  sender->stop();
  sink1->stop();
  sink2->stop();
}

TEST(ErrorLog, LcmFaultsReportedAutomatically) {
  // §6.3: the running table of errors, fed by the LCM address-fault
  // handler through the error hook — no manual report() calls.
  Rig rig;
  ErrorLogServer log(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(log.start().ok());
  auto client = rig.tb.spawn_module("hooked", "vax1", "lan").value();
  auto victim = rig.tb.spawn_module("victim", "sun1", "lan").value();
  ErrorLogClient elc(*client);
  client->lcm().set_error_hook(elc.hook());

  auto addr = client->commod().locate("victim").value();
  ASSERT_TRUE(client->commod().send(addr, to_bytes("warm")).ok());
  ASSERT_TRUE(victim->commod().receive(1s).ok());
  victim->stop();  // now every send faults
  (void)client->commod().send(addr, to_bytes("into the void"));

  for (int spin = 0; spin < 100 && log.total() == 0; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(log.count_for("hooked"), 1u);
  auto table = log.table();
  bool lcm_fault = false;
  for (const auto& [key, n] : table) {
    if (key.module == "hooked" && key.layer == "lcm") lcm_fault = true;
  }
  EXPECT_TRUE(lcm_fault);
  client->stop();
}

TEST(Recursion, FirstMonitoredSendTriggersNestedCalls) {
  // The full §6.1 scenario: monitoring + time correction enabled, first
  // send to a new destination. The send must (1) lazily sync time — which
  // locates the time service and runs request/reply exchanges — and
  // (2) emit a monitor sample — which locates the monitor — all
  // recursively through the same stack, all before/after the actual send.
  Rig rig;
  TimeServer time_server(service_cfg(rig, "sun1"));
  ASSERT_TRUE(time_server.start().ok());
  MonitorServer monitor(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(monitor.start().ok());

  auto app = rig.tb.spawn_module("app", "vax1", "lan").value();
  auto dest = rig.tb.spawn_module("dest", "sun1", "lan").value();
  TimeClient tc(*app);
  MonitorClient mc(*app);
  app->lcm().set_time_source(tc.source());
  app->lcm().set_monitor_hook(mc.hook());

  auto dst = app->commod().locate("dest").value();
  ASSERT_TRUE(app->commod().send(dst, to_bytes("the send")).ok());

  EXPECT_TRUE(tc.synced());  // the time correction happened en route
  for (int spin = 0; spin < 100 && monitor.sample_count() < 1; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(monitor.sample_count(), 1u);
  EXPECT_GT(time_server.requests_served(), 0u);
  // No recursion-limit trips: the guard exists, the depth stays bounded.
  EXPECT_EQ(app->lcm().stats().recursion_trips, 0u);
  // The sample's timestamp is in the *time server's* frame.
  auto samples = monitor.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NE(samples[0].timestamp_ns, 0);
  app->stop();
  dest->stop();
}

TEST(ProcessControl, SpawnKillLifecycle) {
  Rig rig;
  ProcessController pc(rig.tb);
  auto uadd = pc.spawn("echoer", "sun1", "lan", {}, make_echo_service());
  ASSERT_TRUE(uadd.ok());
  EXPECT_EQ(pc.module_count(), 1u);
  EXPECT_NE(pc.find("echoer"), nullptr);

  auto client = rig.tb.spawn_module("cli", "vax1", "lan").value();
  auto reply = client->commod().request(uadd.value(), to_bytes("hi"), 2s);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value().payload), "echo:hi");

  ASSERT_TRUE(pc.kill("echoer").ok());
  EXPECT_EQ(pc.module_count(), 0u);
  EXPECT_EQ(pc.kill("echoer").code(), Errc::not_found);
  client->stop();
}

TEST(ProcessControl, DuplicateSpawnRejected) {
  Rig rig;
  ProcessController pc(rig.tb);
  ASSERT_TRUE(pc.spawn("solo", "sun1", "lan", {}, make_sink_service()).ok());
  EXPECT_EQ(
      pc.spawn("solo", "vax1", "lan", {}, make_sink_service()).code(),
      Errc::already_exists);
}

TEST(ProcessControl, RelocationIsTransparentToClients) {
  // The headline URSA requirement: move a server to another machine while
  // a client keeps talking to the UAdd it resolved once.
  Rig rig;
  ProcessController pc(rig.tb);
  auto orig = pc.spawn("svc", "sun1", "lan", {}, make_echo_service());
  ASSERT_TRUE(orig.ok());

  auto client = rig.tb.spawn_module("c", "vax1", "lan").value();
  auto addr = client->commod().locate("svc").value();
  ASSERT_TRUE(client->commod().request(addr, to_bytes("one"), 2s).ok());

  auto relocated = pc.relocate("svc", "apollo1", "lan");
  ASSERT_TRUE(relocated.ok());
  EXPECT_NE(relocated.value(), orig.value());

  // Same old UAdd; the LCM address-fault handler re-resolves under the
  // hood (§3.5).
  auto reply = client->commod().request(addr, to_bytes("two"), 2s);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value().payload), "echo:two");
  EXPECT_GE(client->lcm().stats().relocations, 1u);
  // And the relocated module really is on the other machine.
  auto* be = dynamic_cast<simnet::SimnetBackend*>(
      &pc.find("svc")->backend());
  ASSERT_NE(be, nullptr);
  EXPECT_EQ(be->machine(), rig.tb.machine_id("apollo1"));
  client->stop();
}

TEST(ProcessControl, RelocationPreservesArchSensitivity) {
  // Relocating from a Sun (big-endian) to a VAX (little-endian) must flip
  // the conversion mode chosen for subsequent traffic.
  Rig rig;
  ProcessController pc(rig.tb);
  ASSERT_TRUE(pc.spawn("svc2", "apollo1", "lan", {}, make_echo_service()).ok());
  auto client = rig.tb.spawn_module("c2", "sun1", "lan").value();  // big
  auto addr = client->commod().locate("svc2").value();
  ASSERT_TRUE(client->commod().request(addr, to_bytes("a"), 2s).ok());
  ASSERT_TRUE(pc.relocate("svc2", "vax1", "lan").ok());  // now little
  auto reply = client->commod().request(addr, to_bytes("b"), 2s);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value().payload), "echo:b");
  client->stop();
}

TEST(ErrorLog, AccumulatesReports) {
  Rig rig;
  ErrorLogServer log(service_cfg(rig, "apollo1"));
  ASSERT_TRUE(log.start().ok());
  auto node = rig.tb.spawn_module("reporter", "vax1", "lan").value();
  ErrorLogClient client(*node);
  client.report("lcm", Errc::address_fault, "circuit died");
  client.report("lcm", Errc::address_fault, "again");
  client.report("nd", Errc::timeout, "open ack late");
  for (int spin = 0; spin < 100 && log.total() < 3; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.count_for("reporter"), 3u);
  auto table = log.table();
  ErrorKey key{"reporter", "lcm", Errc::address_fault};
  EXPECT_EQ(table[key], 2u);
  node->stop();
}

TEST(ErrorLog, ReportWithoutServerIsSilent) {
  Rig rig;
  auto node = rig.tb.spawn_module("quiet", "vax1", "lan").value();
  ErrorLogClient client(*node);
  client.report("nd", Errc::timeout, "nobody listens");
  EXPECT_EQ(client.reported(), 0u);
  node->stop();
}

}  // namespace
}  // namespace ntcs::drts
