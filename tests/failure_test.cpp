// Failure-injection tests: partitions, lossy links, killed channels, dead
// gateways, and a dead Name Server — the "unlikely exceptional conditions"
// of §6.3 made likely.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"
#include "drts/process_control.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

TEST(Failure, KilledChannelMidConversationRecovers) {
  // §3.5: "the original module is still alive" — after the circuit is cut
  // the LCM-Layer reconnects "exactly ... as during an initial connection".
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("one")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());

  // Sever every live channel in the fabric that connects the two (we can
  // kill by id: channel ids are small and sequential; kill until none).
  std::uint64_t killed = 0;
  for (simnet::ChannelId c = 1; c < 64; ++c) {
    if (tb.fabric().kill_channel(c).ok()) ++killed;
  }
  EXPECT_GT(killed, 0u);
  std::this_thread::sleep_for(20ms);  // let closed notifications land

  const auto opened_before = a->ip().stats().ivcs_opened;
  ASSERT_TRUE(a->commod().send(addr, to_bytes("two")).ok());
  auto in = b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "two");
  // The old circuit died and a new one was established for the resend.
  EXPECT_GE(a->ip().stats().ivcs_closed, 1u);
  EXPECT_GT(a->ip().stats().ivcs_opened, opened_before);
  a->stop();
  b->stop();
}

TEST(Failure, ParallelGatewayFailover) {
  // Two gateways bridge the same pair of networks; one dies mid-session.
  // The IP-Layer blacklists the dead attachment, refreshes the registry
  // (where the Name Server has probed it dead), and routes around it.
  Testbed tb;
  tb.net("lan-a");
  tb.net("lan-b");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("gw2", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("m2", Arch::sun3, {"lan-b"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw-primary", "gw1", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.add_gateway("gw-backup", "gw2", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan-a").value();
  auto b = tb.spawn_module("b", "m2", "lan-b").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("via primary")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());

  tb.gateway(0).stop();  // the primary dies
  std::this_thread::sleep_for(20ms);

  ASSERT_TRUE(a->commod().send(addr, to_bytes("via backup")).ok());
  auto in = b->commod().receive(3s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "via backup");
  // The backup did the relaying.
  std::uint64_t backup_relayed = 0;
  for (std::size_t i = 0; i < tb.gateway(1).attachment_count(); ++i) {
    backup_relayed +=
        tb.gateway(1).attachment(i).ip().stats().messages_relayed;
  }
  EXPECT_GT(backup_relayed, 0u);
  a->stop();
  b->stop();
}

TEST(Failure, GatewayDeathWithoutBackupFailsCleanly) {
  Testbed tb;
  tb.net("lan-a");
  tb.net("lan-b");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("m2", Arch::sun3, {"lan-b"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw", "gw1", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan-a").value();
  auto b = tb.spawn_module("b", "m2", "lan-b").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("ok")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());

  tb.gateway(0).stop();
  std::this_thread::sleep_for(20ms);
  auto st = a->commod().send(addr, to_bytes("stranded"));
  EXPECT_FALSE(st.ok());  // no route — surfaced, not hidden
  a->stop();
  b->stop();
}

TEST(Failure, RequestInFlightWhenCircuitDiesFailsFastAndRecovers) {
  // The reply slot is failed by the ivc_closed event — the requester does
  // not sit out its full timeout, and the LCM retries through recovery.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  ntcs::drts::ProcessController pc(tb);
  ASSERT_TRUE(
      pc.spawn("svc", "m2", "lan", {}, ntcs::drts::make_echo_service()).ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto addr = a->commod().locate("svc").value();
  ASSERT_TRUE(a->commod().request(addr, to_bytes("warm"), 2s).ok());

  std::jthread killer([&] {
    std::this_thread::sleep_for(30ms);
    (void)pc.relocate("svc", "m1", "lan");
  });
  // Issue requests while the relocation happens; generous timeout, but the
  // failure path is the fast ivc_closed signal, not the timeout.
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    auto reply = a->commod().request(addr, to_bytes("r"), 10s);
    if (reply.ok()) ++ok;
    std::this_thread::sleep_for(5ms);
  }
  killer.join();
  EXPECT_EQ(ok, 20);  // every request eventually answered
  a->stop();
}

TEST(Failure, PartitionDropsThenHeals) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("pre")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());

  auto lan = tb.fabric().network_by_name("lan").value();
  tb.fabric().set_partitioned(lan, true);
  EXPECT_FALSE(a->commod().send(addr, to_bytes("during")).ok());
  tb.fabric().set_partitioned(lan, false);

  ASSERT_TRUE(a->commod().send(addr, to_bytes("post")).ok());
  auto in = b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "post");
  a->stop();
  b->stop();
}

TEST(Failure, LossyNetworkLosesDataNotSanity) {
  // §3.5: "While the NTCS can not lose messages in a static environment,
  // they can be dropped due to ... reconfiguration" — and under injected
  // frame loss the system must degrade (messages missing) without hanging
  // or corrupting anything.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("warm")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());

  auto lan = tb.fabric().network_by_name("lan").value();
  tb.fabric().set_loss(lan, 0.5);
  constexpr int kSent = 60;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(a->commod().send(addr, to_bytes(std::to_string(i))).ok());
  }
  tb.fabric().set_loss(lan, 0.0);
  int received = 0;
  while (b->commod().receive(100ms).ok()) ++received;
  EXPECT_LT(received, kSent);  // some frames really were lost
  EXPECT_GT(received, 0);      // and some got through
  EXPECT_GT(tb.fabric().stats().frames_dropped, 0u);
  a->stop();
  b->stop();
}

TEST(Failure, LostFragmentCorruptsOneMessageThenHeals) {
  // A mid-message fragment lost on the wire desynchronises the peer's
  // reassembler for at most the current message: the mangled accumulation
  // is rejected at decode (bad magic / bad layout) and dropped, and the
  // following messages flow again. Degradation without corruption.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("warm")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());

  auto lan = tb.fabric().network_by_name("lan").value();
  // ~30% frame loss while we push fragmented (64 KiB) messages.
  tb.fabric().set_loss(lan, 0.3);
  Bytes big(64 * 1024, 0xAB);
  for (int i = 0; i < 10; ++i) {
    (void)a->commod().send(addr, big);
  }
  tb.fabric().set_loss(lan, 0.0);

  // Drain whatever survived; every delivered message must be intact.
  int intact = 0;
  while (true) {
    auto in = b->commod().receive(200ms);
    if (!in.ok()) break;
    if (in.value().payload == big) ++intact;
  }
  EXPECT_LE(intact, 10);  // at 30% frame loss, most messages died
  // After the lossy window the channel works again, fragmentation and all.
  ASSERT_TRUE(a->commod().send(addr, big).ok());
  auto healed = b->commod().receive(2s);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value().payload, big);
  EXPECT_GT(tb.fabric().stats().frames_dropped, 0u);
  a->stop();
  b->stop();
}

TEST(Failure, NameServerDeadNewModulesCannotRegister) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  tb.name_server().stop();
  auto node = tb.make_node("late", "m2", "lan").value();
  auto uadd = node->commod().register_self();
  EXPECT_FALSE(uadd.ok());
  EXPECT_TRUE(node->identity().uadd().is_temporary());  // stuck on its TAdd
  node->stop();
}

TEST(Failure, MbxFlavourRunsTheSamePortableStack) {
  // F1 (DESIGN.md): everything above the ND-Layer is portable — the same
  // system runs when every module binds MBX endpoints instead of TCP.
  Testbed tb;
  tb.net("ring");
  tb.machine("ap1", Arch::apollo_dn330, {"ring"});
  tb.machine("ap2", Arch::apollo_dn330, {"ring"});
  ASSERT_TRUE(
      tb.start_name_server("ap1", "ring", simnet::IpcsKind::mbx).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "ap1", "ring", {}, simnet::IpcsKind::mbx)
               .value();
  auto b = tb.spawn_module("b", "ap2", "ring", {}, simnet::IpcsKind::mbx)
               .value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("over mbx")).ok());
  auto in = b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "over mbx");
  a->stop();
  b->stop();
}

TEST(Failure, MixedIpcsGatewayBridgesTcpAndMbx) {
  // The strongest portability statement: a gateway whose attachments use
  // *different native IPCSs* — the same Gateway code relays between a TCP
  // network and an MBX network (paper §4.1: "the same Gateway module ...
  // used for all networks and machines").
  Testbed tb;
  tb.net("tcp-lan");
  tb.net("mbx-ring");
  tb.machine("vax1", Arch::vax780, {"tcp-lan"});
  tb.machine("bridge", Arch::apollo_dn330, {"tcp-lan", "mbx-ring"});
  tb.machine("ap1", Arch::apollo_dn330, {"mbx-ring"});
  ASSERT_TRUE(tb.start_name_server("vax1", "tcp-lan").ok());
  std::vector<Gateway::Attachment> atts(2);
  atts[0].backend = tb.backend("bridge", simnet::IpcsKind::tcp);
  atts[0].net = "tcp-lan";
  atts[1].backend = tb.backend("bridge", simnet::IpcsKind::mbx);
  atts[1].net = "mbx-ring";
  ASSERT_TRUE(tb.add_gateway("bridge-gw", atts).ok());
  ASSERT_TRUE(tb.finalize().ok());

  auto tcp_mod = tb.spawn_module("tcp-mod", "vax1", "tcp-lan").value();
  auto mbx_mod = tb.spawn_module("mbx-mod", "ap1", "mbx-ring", {},
                                 simnet::IpcsKind::mbx)
                     .value();
  auto addr = tcp_mod->commod().locate("mbx-mod").value();
  ASSERT_TRUE(tcp_mod->commod().send(addr, to_bytes("cross-ipcs")).ok());
  auto in = mbx_mod->commod().receive(3s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "cross-ipcs");
  tcp_mod->stop();
  mbx_mod->stop();
}

}  // namespace
}  // namespace ntcs::core
