// Tests for the DRTS file service (S11): the full protocol surface, size
// limits, relocation behaviour, and concurrent clients.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"
#include "drts/file_service.h"
#include "ursa/corpus.h"

namespace ntcs::drts {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct Rig {
  core::Testbed tb;
  std::unique_ptr<FileServer> server;
  std::unique_ptr<core::Node> client_node;
  std::unique_ptr<FileClient> fs;

  Rig() {
    tb.net("lan");
    tb.machine("vax1", Arch::vax780, {"lan"});
    tb.machine("sun1", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("vax1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    server = std::make_unique<FileServer>(tb.node_config("", "sun1", "lan"));
    EXPECT_TRUE(server->start().ok());
    client_node = tb.spawn_module("fs-client", "vax1", "lan").value();
    fs = std::make_unique<FileClient>(*client_node);
    EXPECT_TRUE(fs->connect().ok());
  }
  ~Rig() {
    if (client_node) client_node->stop();
  }
};

TEST(FileService, WriteReadRoundTrip) {
  Rig rig;
  ASSERT_TRUE(rig.fs->write("/docs/readme", to_bytes("hello files")).ok());
  auto data = rig.fs->read("/docs/readme");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(to_string(data.value()), "hello files");
  EXPECT_EQ(rig.server->file_count(), 1u);
  EXPECT_EQ(rig.server->bytes_stored(), 11u);
}

TEST(FileService, OverwriteBumpsVersion) {
  Rig rig;
  ASSERT_TRUE(rig.fs->write("/f", to_bytes("v1")).ok());
  auto s1 = rig.fs->stat("/f");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(rig.fs->write("/f", to_bytes("v2 longer")).ok());
  auto s2 = rig.fs->stat("/f");
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s2.value().version, s1.value().version);
  EXPECT_EQ(s2.value().size, 9u);
  EXPECT_EQ(to_string(rig.fs->read("/f").value()), "v2 longer");
}

TEST(FileService, AppendCreatesAndExtends) {
  Rig rig;
  ASSERT_TRUE(rig.fs->append("/log", to_bytes("line1\n")).ok());
  ASSERT_TRUE(rig.fs->append("/log", to_bytes("line2\n")).ok());
  EXPECT_EQ(to_string(rig.fs->read("/log").value()), "line1\nline2\n");
}

TEST(FileService, ReadRange) {
  Rig rig;
  ASSERT_TRUE(rig.fs->write("/r", to_bytes("0123456789")).ok());
  EXPECT_EQ(to_string(rig.fs->read_range("/r", 3, 4).value()), "3456");
  // Clamped at end-of-file.
  EXPECT_EQ(to_string(rig.fs->read_range("/r", 8, 100).value()), "89");
  // Offset past end is a caller error.
  EXPECT_EQ(rig.fs->read_range("/r", 11, 1).code(), Errc::bad_argument);
}

TEST(FileService, MissingFileNotFound) {
  Rig rig;
  EXPECT_EQ(rig.fs->read("/nope").code(), Errc::not_found);
  EXPECT_EQ(rig.fs->stat("/nope").code(), Errc::not_found);
  EXPECT_EQ(rig.fs->remove("/nope").code(), Errc::not_found);
}

TEST(FileService, RemoveDeletes) {
  Rig rig;
  ASSERT_TRUE(rig.fs->write("/tmp/x", to_bytes("x")).ok());
  ASSERT_TRUE(rig.fs->remove("/tmp/x").ok());
  EXPECT_EQ(rig.fs->read("/tmp/x").code(), Errc::not_found);
  EXPECT_EQ(rig.server->file_count(), 0u);
}

TEST(FileService, ListByPrefix) {
  Rig rig;
  ASSERT_TRUE(rig.fs->write("/a/1", to_bytes("1")).ok());
  ASSERT_TRUE(rig.fs->write("/a/2", to_bytes("22")).ok());
  ASSERT_TRUE(rig.fs->write("/b/3", to_bytes("333")).ok());
  auto a = rig.fs->list("/a/");
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.value().size(), 2u);
  EXPECT_EQ(a.value()[0].path, "/a/1");
  EXPECT_EQ(a.value()[1].size, 2u);
  auto all = rig.fs->list("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 3u);
}

TEST(FileService, EmptyPathRejected) {
  Rig rig;
  EXPECT_EQ(rig.fs->write("", to_bytes("x")).code(), Errc::bad_argument);
}

TEST(FileService, OversizeFileRejected) {
  Rig rig;
  // Grow the file to exactly the cap with appends, then one more byte
  // must be refused with too_big (and the file left unchanged).
  Bytes chunk(1 << 20, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.fs->append("/big", chunk).ok());
  }
  EXPECT_EQ(rig.fs->stat("/big").value().size, kMaxFileSize);
  auto st = rig.fs->append("/big", to_bytes("x"));
  EXPECT_EQ(st.code(), Errc::too_big);
  EXPECT_EQ(rig.fs->stat("/big").value().size, kMaxFileSize);
}

TEST(FileService, BinaryContentSurvives) {
  Rig rig;
  Bytes blob(4096);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_TRUE(rig.fs->write("/bin", blob).ok());
  EXPECT_EQ(rig.fs->read("/bin").value(), blob);
}

TEST(FileService, ConcurrentClients) {
  Rig rig;
  auto node2 = rig.tb.spawn_module("fs-client-2", "sun1", "lan").value();
  FileClient fs2(*node2);
  ASSERT_TRUE(fs2.connect().ok());
  std::jthread w1([&] {
    for (int i = 0; i < 50; ++i) {
      (void)rig.fs->append("/shared", to_bytes("a"));
    }
  });
  std::jthread w2([&] {
    for (int i = 0; i < 50; ++i) {
      (void)fs2.append("/shared", to_bytes("b"));
    }
  });
  w1.join();
  w2.join();
  auto data = rig.fs->read("/shared");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().size(), 100u);  // all appends applied exactly once
  node2->stop();
}

TEST(FileService, UrsaDocumentsOnFileService) {
  // The original use: URSA document storage behind the backends.
  Rig rig;
  auto corpus = ursa::Corpus::generate(10, 3);
  for (const auto& doc : corpus.documents()) {
    ASSERT_TRUE(rig.fs->write("/corpus/" + std::to_string(doc.id),
                              to_bytes(doc.text))
                    .ok());
  }
  EXPECT_EQ(rig.server->file_count(), 10u);
  auto back = rig.fs->read("/corpus/5");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(back.value()), corpus.find(5)->text);
}

}  // namespace
}  // namespace ntcs::drts
