// The grand integration test: EVERYTHING at once — the deployment shape of
// the paper's §7 "three generations" systems. Three networks, two chained
// gateways, a replicated Name Server, all four DRTS services, the URSA
// application, heterogeneous machines with skewed clocks, monitoring and
// time correction enabled on the host — then dynamic reconfiguration and a
// primary Name-Server failure, with the application still answering.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"
#include "drts/error_log.h"
#include "drts/file_service.h"
#include "drts/monitor.h"
#include "drts/process_control.h"
#include "drts/time_service.h"
#include "ursa/query.h"
#include "ursa/servers.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

TEST(GrandIntegration, FullSystemEndToEnd) {
  // --- environment: 3 networks in a chain, 6 machines, skewed clocks ----
  Testbed tb(20260707);
  tb.net("office");
  tb.net("backbone");
  tb.net("backend");
  tb.machine("vax-host", Arch::vax780, {"office"});
  tb.machine("gw1", Arch::apollo_dn330, {"office", "backbone"});
  tb.machine("mv-mid", Arch::microvax, {"backbone"});
  tb.machine("gw2", Arch::apollo_dn330, {"backbone", "backend"});
  tb.machine("sun-be", Arch::sun3, {"backend"});
  tb.machine("pdp-be", Arch::pdp11_70, {"backend"});
  ASSERT_TRUE(tb.start_name_server("mv-mid", "backbone").ok());
  ASSERT_TRUE(tb.add_gateway("gw-ob", "gw1", {"office", "backbone"}).ok());
  ASSERT_TRUE(tb.add_gateway("gw-bb", "gw2", {"backbone", "backend"}).ok());
  ASSERT_TRUE(tb.add_name_server_replica("sun-be", "backend").ok());
  ASSERT_TRUE(tb.finalize().ok());
  tb.fabric().set_clock_offset(tb.machine_id("sun-be"), 2s);

  // --- DRTS: time, monitor, error log, file service ----------------------
  ntcs::drts::TimeServer time_server(tb.node_config("", "sun-be", "backend"));
  ASSERT_TRUE(time_server.start().ok());
  ntcs::drts::MonitorServer monitor(tb.node_config("", "mv-mid", "backbone"));
  ASSERT_TRUE(monitor.start().ok());
  ntcs::drts::ErrorLogServer errlog(tb.node_config("", "mv-mid", "backbone"));
  ASSERT_TRUE(errlog.start().ok());
  ntcs::drts::FileServer files(tb.node_config("", "sun-be", "backend"));
  ASSERT_TRUE(files.start().ok());

  // --- the application: URSA backends on the backend network -------------
  ntcs::drts::ProcessController pc(tb);
  ursa::UrsaPlacement placement;
  placement.index_machine = "sun-be";
  placement.index_net = "backend";
  placement.doc_machine = "pdp-be";
  placement.doc_net = "backend";
  placement.search_machine = "pdp-be";
  placement.search_net = "backend";
  auto corpus = ursa::spawn_ursa(pc, placement, 150, 5);
  ASSERT_TRUE(corpus.ok());

  // --- the host workstation, fully instrumented --------------------------
  auto host = tb.spawn_module("workstation", "vax-host", "office").value();
  ntcs::drts::TimeClient tc(*host);
  ntcs::drts::MonitorClient mc(*host);
  ntcs::drts::ErrorLogClient elc(*host);
  host->lcm().set_time_source(tc.source());
  host->lcm().set_monitor_hook(mc.hook());
  host->lcm().set_error_hook(elc.hook());

  ursa::UrsaHost ursa_host(*host);
  ASSERT_TRUE(ursa_host.connect().ok());

  // --- phase 1: normal operation across two gateways ---------------------
  const std::string q1 = corpus.value()->vocabulary()[0] + " or " +
                         corpus.value()->vocabulary()[7];
  auto hits = ursa_host.search(q1, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits.value().empty());
  auto doc = ursa_host.fetch(hits.value()[0].doc);
  ASSERT_TRUE(doc.ok());
  // Archive the top document on the (cross-network) file service.
  ntcs::drts::FileClient fc(*host);
  ASSERT_TRUE(fc.connect().ok());
  ASSERT_TRUE(fc.write("/archive/top", to_bytes(doc.value().text)).ok());
  EXPECT_EQ(to_string(fc.read("/archive/top").value()), doc.value().text);

  // The time correction really ran (the clock skew is hidden).
  EXPECT_TRUE(tc.synced());
  EXPECT_NEAR(static_cast<double>(tc.offset_ns()), 2e9, 1e8);

  // --- phase 2: dynamic reconfiguration mid-session -----------------------
  ASSERT_TRUE(pc.relocate(std::string(ursa::kIndexServerName), "pdp-be",
                          "backend")
                  .ok());
  auto hits2 = ursa_host.search(q1, 5);
  ASSERT_TRUE(hits2.ok());
  EXPECT_EQ(hits.value(), hits2.value());  // identical answers after the move

  // --- phase 3: primary Name-Server death ---------------------------------
  for (int spin = 0; spin < 400 && tb.replica(0).record_count() < 8; ++spin) {
    std::this_thread::sleep_for(5ms);
  }
  tb.name_server().stop();
  // Resolution fails over to the replica; warm paths never notice.
  auto hits3 = ursa_host.search(q1, 5);
  ASSERT_TRUE(hits3.ok());
  EXPECT_EQ(hits.value(), hits3.value());
  EXPECT_TRUE(host->commod().locate(ursa::kDocServerName).ok());

  // --- the observability record -------------------------------------------
  for (int spin = 0; spin < 100 && monitor.sample_count() < 1; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GT(monitor.sample_count(), 0u);
  EXPECT_FALSE(monitor.report().empty());
  EXPECT_EQ(host->lcm().stats().recursion_trips, 0u);

  host->stop();
}

}  // namespace
}  // namespace ntcs::core
