// Live-health-plane tests (ctest label `health`): gauges and histogram
// maxima in the metrics registry, the flight-recorder journal ring, the
// watchdog's stall / wedged-window / queue-near-bound / storm classifiers
// (each seeded deliberately and checked for the right HealthReport and
// journal events), the zero-false-positive property on a clean pipelined
// chaos run, and the end-to-end harvest: query_health / query_journal over
// the NTCS itself, including the truncated flag.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>

#include "common/health.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/testbed.h"
#include "drts/monitor.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

std::uint64_t fabric_seed() {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 1;
}

// --------------------------------------------------------- gauges and maxima

TEST(HealthGauge, SetAddSubAndPeak) {
  metrics::Gauge g;
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.peak(), 15);  // the transient 15 survives the sub
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.peak(), 15);  // peaks never move down
}

TEST(HealthGauge, RegistrySnapshotAndRendering) {
  metrics::MetricsRegistry reg;
  reg.gauge("t.depth").set(7);
  reg.gauge("t.depth").add(2);
  reg.counter("t.events").inc(3);

  const auto snap = reg.snapshot();
  const auto* v = snap.find("t.depth");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, metrics::MetricKind::gauge);
  EXPECT_EQ(v->gauge, 9);
  EXPECT_EQ(v->gauge_peak, 9);
  EXPECT_EQ(snap.gauge_value("t.depth"), 9);
  EXPECT_EQ(snap.gauge_value("t.missing"), 0);

  // Gauges are levels: a delta passes them through unchanged.
  const auto d = snap.delta(snap);
  EXPECT_EQ(d.gauge_value("t.depth"), 9);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"t.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"peak\""), std::string::npos);
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("ntcs_t_depth 9"), std::string::npos);
  EXPECT_NE(prom.find("ntcs_t_depth_peak 9"), std::string::npos);
}

TEST(HealthHistogram, TracksExactMaximum) {
  metrics::MetricsRegistry reg;
  auto& h = reg.histogram("t.lat_ns");
  h.record(std::uint64_t{100});
  h.record(std::uint64_t{5'000'000'000});  // the outlier p99 would hide
  h.record(std::uint64_t{200});
  EXPECT_EQ(h.max(), 5'000'000'000u);

  const auto snap = reg.snapshot();
  const auto* v = snap.find("t.lat_ns");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->max, 5'000'000'000u);
  EXPECT_NE(snap.to_json().find("\"max_ns\": 5000000000"), std::string::npos);
}

// ------------------------------------------------------- the flight recorder

TEST(HealthJournal, RecordSnapshotOverwriteAndClear) {
  health::Journal j(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    j.record(health::EventKind::shed, "lcm", "shed_data", i, 100 + i, 0, 0);
  }
  EXPECT_EQ(j.dropped(), 0u);
  auto events = j.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // ticket order
  }

  // Wrap: the four oldest are overwritten and counted.
  for (std::uint64_t i = 8; i < 12; ++i) {
    j.record(health::EventKind::retry, "nd", "open_retry", i, 0, 0, 0);
  }
  EXPECT_EQ(j.dropped(), 4u);
  events = j.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().a, 4u);  // events 0..3 lost
  EXPECT_EQ(events.back().kind, health::EventKind::retry);
  EXPECT_EQ(events.back().layer, "nd");
  EXPECT_EQ(events.back().what, "open_retry");

  // Over-long names truncate into the fixed slot fields, no overflow.
  j.record(health::EventKind::transition, "a-layer-name-well-past-twelve",
           "a-what-string-well-past-sixteen", 0, 0, 0, 0);
  events = j.snapshot();
  EXPECT_LE(events.back().layer.size(), 12u);
  EXPECT_LE(events.back().what.size(), 16u);
  EXPECT_EQ(events.back().layer,
            std::string("a-layer-name-well-past-twelve")
                .substr(0, events.back().layer.size()));

  j.clear();
  EXPECT_TRUE(j.snapshot().empty());
  // Clearing forgets events, not drops: the counter is cumulative.
  EXPECT_EQ(j.dropped(), 5u);
}

TEST(HealthJournal, NotesCarryTheActiveTraceContext) {
  health::journal_clear();
  trace::clear_spans();
  trace::set_sampling(trace::SampleMode::always);
  trace::TraceContext seen;
  {
    trace::RootSpan root("ali", "request", "n");
    seen = trace::current();
    ASSERT_TRUE(seen.valid());
    health::journal_note(health::EventKind::failover, "lcm", "addr_fault", 1);
  }
  trace::set_sampling(trace::SampleMode::off);
  health::journal_note(health::EventKind::busy, "lcm", "busy_recv");

  const auto events = health::journal_snapshot();
  ASSERT_GE(events.size(), 2u);
  const auto& traced = events[events.size() - 2];
  EXPECT_EQ(traced.what, "addr_fault");
  EXPECT_EQ(traced.trace_hi, seen.hi);  // correlated with the live trace
  EXPECT_EQ(traced.trace_lo, seen.lo);
  EXPECT_EQ(events.back().trace_hi, 0u);  // untraced note stays zero
}

// ------------------------------------------------------------- the watchdog

TEST(HealthWatchdog, SeededStallIsDetectedAndRecovers) {
  health::journal_clear();
  health::HealthRegistry reg;
  health::Heartbeat& hb = reg.heartbeat("test.pump", 100ms);
  hb.beat();

  auto rep = reg.check_now();
  const auto* l = rep.find("test.pump");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->state, health::HealthState::ok);

  // Park the "loop": past stall_after with no beat, the layer is stalled
  // within one sample, with evidence naming the silence.
  std::this_thread::sleep_for(300ms);
  rep = reg.check_now();
  l = rep.find("test.pump");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->state, health::HealthState::stalled);
  EXPECT_NE(l->evidence.find("no heartbeat"), std::string::npos);
  EXPECT_EQ(rep.overall, health::HealthState::stalled);
  EXPECT_NE(rep.to_string().find("test.pump"), std::string::npos);

  // The transition was journaled (ok->stalled), trace-correlated or not.
  bool journaled = false;
  for (const auto& e : health::journal_snapshot()) {
    if (e.kind == health::EventKind::health && e.layer == "test.pump" &&
        e.what == "ok->stalled") {
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);

  // A beat recovers it; retiring removes it from the report entirely.
  hb.beat();
  rep = reg.check_now();
  EXPECT_EQ(rep.find("test.pump")->state, health::HealthState::ok);
  hb.retire();
  rep = reg.check_now();
  EXPECT_EQ(rep.find("test.pump"), nullptr);
}

TEST(HealthWatchdog, WedgedWindowBeaconIsStalled) {
  health::HealthRegistry reg;
  health::Beacon& bc = reg.beacon("test.window");

  // A future deadline is healthy: waiters are parked but not yet due.
  bc.set(trace::now_ns() + std::chrono::nanoseconds(10s).count());
  auto rep = reg.check_now();
  ASSERT_NE(rep.find("test.window"), nullptr);
  EXPECT_EQ(rep.find("test.window")->state, health::HealthState::ok);

  // A deadline stuck in the past (beyond grace) is a wedge: the sweep that
  // should have granted or timed the waiter out never ran.
  bc.set(trace::now_ns() - std::chrono::nanoseconds(1s).count());
  rep = reg.check_now();
  const auto* l = rep.find("test.window");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->state, health::HealthState::stalled);
  EXPECT_NE(l->evidence.find("wedged"), std::string::npos);

  bc.clear();
  rep = reg.check_now();
  EXPECT_EQ(rep.find("test.window"), nullptr);  // cleared beacons drop out
}

TEST(HealthWatchdog, QueueNearBoundIsDegraded) {
  health::journal_clear();
  health::HealthRegistry reg;
  // Gauge pairs live in the process metrics registry (check_now snapshots
  // it); unique names keep this test's pair out of other suites' way.
  metrics::Gauge& depth = metrics::gauge("test.hq.depth");
  metrics::Gauge& bound = metrics::gauge("test.hq.bound");
  bound.set(100);
  depth.set(50);
  auto rep = reg.check_now();
  EXPECT_EQ(rep.find("test.hq"), nullptr);  // half full: not reported

  depth.set(95);  // >= 90% of bound
  rep = reg.check_now();
  const auto* l = rep.find("test.hq");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->state, health::HealthState::degraded);
  EXPECT_NE(l->evidence.find("queue at 95/100"), std::string::npos);
  EXPECT_EQ(rep.overall, health::HealthState::degraded);
  bool journaled = false;
  for (const auto& e : health::journal_snapshot()) {
    if (e.kind == health::EventKind::health && e.layer == "test.hq") {
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);

  // A depth gauge with no .bound sibling (lcm.window.in_flight,
  // nsp.lease_cache.size) can never trip the rule.
  metrics::gauge("test.unbounded.depth").set(1'000'000);
  depth.set(0);  // drain — and leave the registry clean for later suites
  rep = reg.check_now();
  EXPECT_EQ(rep.find("test.hq"), nullptr);
  EXPECT_EQ(rep.find("test.unbounded"), nullptr);
  EXPECT_EQ(rep.overall, health::HealthState::ok);
}

TEST(HealthWatchdog, CounterStormIsDegradedForOnePeriod) {
  health::HealthRegistry reg;
  metrics::Counter& c = metrics::counter("test.storm.events");
  reg.watch_rate("test.storm.events", "test.storm", 10);

  (void)reg.check_now();  // primes the watch; no verdict yet
  c.inc(50);
  auto rep = reg.check_now();
  const auto* l = rep.find("test.storm");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->state, health::HealthState::degraded);
  EXPECT_NE(l->evidence.find("test.storm.events"), std::string::npos);

  // No further movement: the storm clears at the next sample.
  rep = reg.check_now();
  EXPECT_EQ(rep.find("test.storm"), nullptr);
  c.inc(3);  // below threshold: still quiet
  rep = reg.check_now();
  EXPECT_EQ(rep.find("test.storm"), nullptr);
}

TEST(HealthWatchdog, BackgroundThreadSamplesAndStops) {
  health::HealthRegistry reg;
  health::Heartbeat& hb = reg.heartbeat("test.bg", 10s);
  hb.beat();
  health::WatchdogConfig cfg;
  cfg.period = 20ms;
  reg.start_watchdog(cfg);
  EXPECT_TRUE(reg.watchdog_running());
  std::this_thread::sleep_for(100ms);
  const auto rep = reg.latest();
  EXPECT_NE(rep.ts_ns, 0);  // the thread sampled
  ASSERT_NE(rep.find("test.bg"), nullptr);
  EXPECT_EQ(rep.find("test.bg")->state, health::HealthState::ok);
  reg.stop_watchdog();
  EXPECT_FALSE(reg.watchdog_running());
  reg.stop_watchdog();  // idempotent
}

// ------------------------------------------------- clean run: no false alarms

TEST(HealthWatchdog, CleanPipelinedChaosRunStaysOk) {
  // The zero-false-positive property: a healthy rig under pipelined load
  // and recoverable faults must never read degraded or stalled. The
  // watchdog samples concurrently with the run at a tight period.
  Testbed tb(fabric_seed());
  tb.net("lan-a");
  tb.net("lan-b");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("m2", Arch::sun3, {"lan-b"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw", "gw1", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan-a").value();
  auto b = tb.spawn_module("b", "m2", "lan-b").value();

  health::HealthRegistry reg;  // local: this test owns its verdicts
  health::WatchdogConfig cfg;
  cfg.period = 25ms;
  reg.start_watchdog(cfg);

  std::jthread echo([&b](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = b->commod().receive(50ms);
      if (in.ok() && in.value().is_request) {
        (void)b->commod().reply(in.value().reply_ctx, in.value().payload);
      }
    }
  });
  auto addr = a->commod().locate("b");
  ASSERT_TRUE(addr.ok());

  simnet::FaultPlan plan;
  plan.dup_prob = 0.03;
  plan.reorder_prob = 0.03;
  plan.reorder_window = 200us;
  tb.fabric().set_fault_plan(tb.fabric().network_by_name("lan-b").value(),
                             plan);

  int delivered = 0;
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<Result<RequestTicket>> tickets;
    for (int i = 0; i < 8; ++i) {
      tickets.push_back(
          a->commod().request_async(addr.value(), to_bytes("req"), 3s));
    }
    for (auto& t : tickets) {
      if (t.ok() && a->commod().await(t.value()).ok()) ++delivered;
    }
  }
  tb.fabric().clear_faults();
  ASSERT_GT(delivered, 0);

  const auto rep = reg.check_now();
  EXPECT_EQ(rep.overall, health::HealthState::ok) << rep.to_string();
  for (const auto& l : rep.layers) {
    EXPECT_EQ(l.state, health::HealthState::ok)
        << l.name << ": " << l.evidence;
  }
  reg.stop_watchdog();

  echo.request_stop();
  a->stop();
  b->stop();
}

// ------------------------------------------------- the recursive harvest path

TEST(HealthHarvest, QueryHealthAndJournalOverTheNtcs) {
  Testbed tb(fabric_seed());
  tb.net("lan-a");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("m-mon", Arch::pdp11_70, {"lan-a"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.finalize().ok());

  drts::MonitorServer monitor(tb.node_config("", "m-mon", "lan-a"));
  ASSERT_TRUE(monitor.start().ok());
  auto a = tb.spawn_module("a", "m1", "lan-a").value();
  auto mon_addr = a->commod().locate(drts::kMonitorName);
  ASSERT_TRUE(mon_addr.ok());

  // Seed a stall in the process registry: a heartbeat that never beats
  // after registration (registration primes the watchdog's epoch sample).
  // No watchdog thread runs, so the monitor must take a fresh sample —
  // the induced stall is visible within one stall_after window.
  health::Heartbeat& hb = health::heartbeat("test.harvest.loop", 100ms);
  std::this_thread::sleep_for(300ms);

  bool truncated = true;
  auto rep = drts::query_health(*a, mon_addr.value(), &truncated);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(truncated);  // health replies are never clipped
  EXPECT_NE(rep.value().ts_ns, 0);
  const auto* l = rep.value().find("test.harvest.loop");
  ASSERT_NE(l, nullptr) << rep.value().to_string();
  EXPECT_EQ(l->state, health::HealthState::stalled);
  EXPECT_NE(l->evidence.find("no heartbeat"), std::string::npos);
  // The serve loop itself heartbeats and reads healthy in the same report.
  const auto* mon_l = rep.value().find("drts.monitor");
  ASSERT_NE(mon_l, nullptr);
  EXPECT_EQ(mon_l->state, health::HealthState::ok);
  hb.retire();

  // Journal harvest: node lifecycle transitions recorded by the testbed
  // modules come back over the wire, fields intact.
  auto events = drts::query_journal(*a, mon_addr.value());
  ASSERT_TRUE(events.ok());
  ASSERT_FALSE(events.value().empty());
  bool saw_start = false;
  for (const auto& e : events.value()) {
    if (e.kind == health::EventKind::transition && e.layer == "node" &&
        e.what == "start") {
      saw_start = true;
    }
  }
  EXPECT_TRUE(saw_start);
  for (std::size_t i = 1; i < events.value().size(); ++i) {
    EXPECT_LT(events.value()[i - 1].seq, events.value()[i].seq);
  }

  // Forced truncation: a cap of 1 clips to the single newest event and
  // raises the flag the fleet merge surfaces.
  truncated = false;
  auto one = drts::query_journal(*a, mon_addr.value(), 1, &truncated);
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one.value().size(), 1u);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(one.value().front().seq, events.value().back().seq);

  // Metrics over the same path: gauges round-trip with kind, level, peak
  // and histogram max intact (the wire grew those fields with the plane).
  metrics::gauge("test.harvest.depth").set(41);
  bool m_trunc = true;
  auto snap = drts::query_metrics(*a, mon_addr.value(), &m_trunc);
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(m_trunc);
  const auto* v = snap.value().find("test.harvest.depth");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, metrics::MetricKind::gauge);
  EXPECT_EQ(v->gauge, 41);
  EXPECT_GE(v->gauge_peak, 41);
  metrics::gauge("test.harvest.depth").set(0);

  a->stop();
  monitor.stop();
}

}  // namespace
}  // namespace ntcs::core
