// End-to-end integration tests: full NTCS stacks (Name Server, gateways,
// application modules) on simulated topologies — and, value-parameterized
// through Testbed's substrate knob, on real loopback TCP sockets. Every
// fixture below runs twice: once over simnet, once over realnet. Cases
// that need the simulated fabric itself (fault injection, heterogeneous
// architectures) stay in *Simnet suites.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;
using simnet::IpcsKind;

std::string substrate_param_name(
    const ::testing::TestParamInfo<Substrate>& info) {
  return info.param == Substrate::simnet ? "simnet" : "realnet";
}

/// One LAN, three machines, Name Server + two modules.
struct SingleLan {
  Testbed tb;
  std::unique_ptr<Node> alice;
  std::unique_ptr<Node> bob;

  explicit SingleLan(Substrate substrate = Substrate::simnet)
      : tb(1, substrate) {
    tb.net("lan");
    tb.machine("vax1", Arch::vax780, {"lan"});
    tb.machine("sun1", Arch::sun3, {"lan"});
    tb.machine("apollo1", Arch::apollo_dn330, {"lan"});
    EXPECT_TRUE(tb.start_name_server("vax1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    alice = tb.spawn_module("alice", "sun1", "lan").value();
    bob = tb.spawn_module("bob", "apollo1", "lan").value();
  }
  ~SingleLan() {
    if (alice) alice->stop();
    if (bob) bob->stop();
  }
};

class SingleLanTest : public ::testing::TestWithParam<Substrate> {};

INSTANTIATE_TEST_SUITE_P(Backends, SingleLanTest,
                         ::testing::Values(Substrate::simnet,
                                           Substrate::realnet),
                         substrate_param_name);

TEST_P(SingleLanTest, RegistrationAssignsPermanentUAdds) {
  SingleLan rig(GetParam());
  EXPECT_TRUE(rig.alice->identity().uadd().valid());
  EXPECT_FALSE(rig.alice->identity().uadd().is_temporary());
  EXPECT_NE(rig.alice->identity().uadd(), rig.bob->identity().uadd());
  EXPECT_GE(rig.alice->identity().uadd().raw(), kFirstDynamicUAdd);
}

TEST_P(SingleLanTest, LocateByName) {
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob");
  ASSERT_TRUE(bob_addr.ok());
  EXPECT_EQ(bob_addr.value(), rig.bob->identity().uadd());
  EXPECT_EQ(rig.alice->commod().locate("nobody").code(), Errc::not_found);
}

TEST_P(SingleLanTest, SendAndReceive) {
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob").value();
  ASSERT_TRUE(rig.alice->commod().send(bob_addr, to_bytes("hello bob")).ok());
  auto in = rig.bob->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "hello bob");
  EXPECT_EQ(in.value().src, rig.alice->identity().uadd());
  EXPECT_FALSE(in.value().is_request);
}

TEST_P(SingleLanTest, RequestReply) {
  SingleLan rig(GetParam());
  std::jthread server([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.bob->commod().receive(100ms);
      if (!in.ok()) continue;
      if (in.value().is_request) {
        std::string text = to_string(in.value().payload);
        (void)rig.bob->commod().reply(in.value().reply_ctx,
                                      to_bytes("echo:" + text));
      }
    }
  });
  auto bob_addr = rig.alice->commod().locate("bob").value();
  auto reply = rig.alice->commod().request(bob_addr, to_bytes("marco"), 2s);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value().payload), "echo:marco");
  server.request_stop();
}

TEST_P(SingleLanTest, LocateAttrs) {
  SingleLan rig(GetParam());
  auto carol =
      rig.tb.spawn_module("carol", "sun1", "lan", {{"role", "search"}})
          .value();
  auto dave =
      rig.tb.spawn_module("dave", "apollo1", "lan", {{"role", "search"}})
          .value();
  auto hits = rig.alice->commod().locate_attrs({{"role", "search"}});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 2u);
  carol->stop();
  dave->stop();
}

TEST_P(SingleLanTest, TAddsPurgedAfterRegistration) {
  SingleLan rig(GetParam());
  // Registration itself ran over the Nucleus with a TAdd source; the
  // Name-Server side must have promoted it by now (within two exchanges,
  // §3.4). One extra ping forces the second exchange.
  ASSERT_TRUE(rig.alice->commod().ping_name_server().ok());
  const auto promoted =
      rig.tb.name_server().node().lcm().stats().tadds_promoted;
  EXPECT_GE(promoted, 1u);
}

TEST_P(SingleLanTest, LargeMessageIsFragmented) {
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob").value();
  Bytes big(100 * 1024, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(rig.alice->commod().send(bob_addr, big).ok());
  auto in = rig.bob->commod().receive(5s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value().payload, big);
}

TEST_P(SingleLanTest, OversizeMessageRejected) {
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob").value();
  Bytes huge(kMaxAppMessage + 1, 1);
  EXPECT_EQ(rig.alice->commod().send(bob_addr, huge).code(), Errc::too_big);
}

TEST_P(SingleLanTest, NameServerRemovableAfterWarmup) {
  // §3.3: "once all necessary addresses have been resolved ... the Name
  // Server can be removed with no consequence, unless the system is
  // reconfigured."
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob").value();
  ASSERT_TRUE(rig.alice->commod().send(bob_addr, to_bytes("warm")).ok());
  (void)rig.bob->commod().receive(2s);

  rig.tb.name_server().stop();

  ASSERT_TRUE(rig.alice->commod().send(bob_addr, to_bytes("still works")).ok());
  auto in = rig.bob->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "still works");
  // A leased name still answers from the cache (that is the point of the
  // lease), but once the lease is gone, new resolutions fail.
  rig.alice->nsp().debug_force_expire("bob");
  EXPECT_FALSE(rig.alice->commod().locate("bob").ok());
}

/// Two LANs joined by one gateway machine; NS on LAN A.
struct TwoLans {
  Testbed tb;
  std::unique_ptr<Node> host;    // on lan-a (VAX)
  std::unique_ptr<Node> server;  // on lan-b (Sun)

  explicit TwoLans(Substrate substrate = Substrate::simnet)
      : tb(1, substrate) {
    tb.net("lan-a");
    tb.net("lan-b");
    tb.machine("vax1", Arch::vax780, {"lan-a"});
    tb.machine("gwbox", Arch::apollo_dn330, {"lan-a", "lan-b"});
    tb.machine("sun1", Arch::sun3, {"lan-b"});
    EXPECT_TRUE(tb.start_name_server("vax1", "lan-a").ok());
    EXPECT_TRUE(
        tb.add_gateway("gw-ab", "gwbox", {"lan-a", "lan-b"}).ok());
    EXPECT_TRUE(tb.finalize().ok());
    host = tb.spawn_module("host", "vax1", "lan-a").value();
    server = tb.spawn_module("server", "sun1", "lan-b").value();
  }
  ~TwoLans() {
    if (host) host->stop();
    if (server) server->stop();
  }
};

class TwoLansTest : public ::testing::TestWithParam<Substrate> {};

INSTANTIATE_TEST_SUITE_P(Backends, TwoLansTest,
                         ::testing::Values(Substrate::simnet,
                                           Substrate::realnet),
                         substrate_param_name);

TEST_P(TwoLansTest, CrossNetworkRegistrationWorks) {
  // `server` is on lan-b; its registration had to traverse the prime
  // gateway to reach the Name Server on lan-a.
  TwoLans rig(GetParam());
  EXPECT_FALSE(rig.server->identity().uadd().is_temporary());
}

TEST_P(TwoLansTest, CrossNetworkSend) {
  TwoLans rig(GetParam());
  auto addr = rig.host->commod().locate("server").value();
  ASSERT_TRUE(rig.host->commod().send(addr, to_bytes("over the hill")).ok());
  auto in = rig.server->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "over the hill");
}

TEST_P(TwoLansTest, CrossNetworkRequestReply) {
  TwoLans rig(GetParam());
  std::jthread srv([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.server->commod().receive(100ms);
      if (in.ok() && in.value().is_request) {
        (void)rig.server->commod().reply(in.value().reply_ctx,
                                         to_bytes("ack"));
      }
    }
  });
  auto addr = rig.host->commod().locate("server").value();
  auto reply = rig.host->commod().request(addr, to_bytes("syn"), 2s);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value().payload), "ack");
  srv.request_stop();
}

TEST_P(TwoLansTest, GatewayRelaysData) {
  TwoLans rig(GetParam());
  auto addr = rig.host->commod().locate("server").value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        rig.host->commod().send(addr, to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto in = rig.server->commod().receive(2s);
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(to_string(in.value().payload), std::to_string(i));
  }
  // The relay fast path ran in the gateway's attachment IP-Layers.
  std::uint64_t relayed = 0;
  for (std::size_t i = 0; i < rig.tb.gateway(0).attachment_count(); ++i) {
    relayed += rig.tb.gateway(0).attachment(i).ip().stats().messages_relayed;
  }
  EXPECT_GT(relayed, 0u);
}

TEST(TwoLansSimnet, HeterogeneousConversionAppliedAutomatically) {
  // host is a VAX (little-endian), server a Sun (big-endian): a schema
  // message must arrive intact because the Nucleus switches to packed mode.
  // Simnet-only: over realnet every process reports the one real
  // architecture, so heterogeneity cannot arise (tcp_backend.h).
  TwoLans rig;
  convert::MessageSchema schema(
      "probe", {{"id", convert::FieldType::u32},
                {"value", convert::FieldType::i64},
                {"label", convert::FieldType::chars, 8}});
  auto rec = schema.make_record();
  ASSERT_TRUE(rec.set_u64("id", 0xDEADBEEF).ok());
  ASSERT_TRUE(rec.set_i64("value", -123456789).ok());
  ASSERT_TRUE(rec.set_string("label", "ursa").ok());

  auto addr = rig.host->commod().locate("server").value();
  auto payload = rig.host->commod().payload_for(rec);
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(rig.host->commod().send(addr, payload.value()).ok());

  auto in = rig.server->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value().mode, convert::XferMode::packed);
  auto decoded = rig.server->commod().decode(in.value(), schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().get_u64("id").value(), 0xDEADBEEFu);
  EXPECT_EQ(decoded.value().get_i64("value").value(), -123456789);
  EXPECT_EQ(decoded.value().get_string("label").value(), "ursa");
}

TEST(TwoLansSimnet, SameArchUsesImageMode) {
  TwoLans rig;
  auto peer = rig.tb.spawn_module("peer", "vax1", "lan-a").value();
  convert::MessageSchema schema("probe", {{"id", convert::FieldType::u32}});
  auto rec = schema.make_record();
  ASSERT_TRUE(rec.set_u64("id", 7).ok());
  auto addr = rig.host->commod().locate("peer").value();
  auto payload = rig.host->commod().payload_for(rec);
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(rig.host->commod().send(addr, payload.value()).ok());
  auto in = peer->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value().mode, convert::XferMode::image);
  auto decoded = peer->commod().decode(in.value(), schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().get_u64("id").value(), 7u);
  peer->stop();
}

/// Three LANs in a chain: a - b - c, two gateways, NS on b (the middle).
struct ThreeLans {
  Testbed tb;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  explicit ThreeLans(Substrate substrate = Substrate::simnet)
      : tb(1, substrate) {
    tb.net("lan-a");
    tb.net("lan-b");
    tb.net("lan-c");
    tb.machine("ma", Arch::vax780, {"lan-a"});
    tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
    tb.machine("mb", Arch::sun3, {"lan-b"});
    tb.machine("gw2", Arch::apollo_dn330, {"lan-b", "lan-c"});
    tb.machine("mc", Arch::sun2, {"lan-c"});
    EXPECT_TRUE(tb.start_name_server("mb", "lan-b").ok());
    EXPECT_TRUE(tb.add_gateway("gw-ab", "gw1", {"lan-a", "lan-b"}).ok());
    EXPECT_TRUE(tb.add_gateway("gw-bc", "gw2", {"lan-b", "lan-c"}).ok());
    EXPECT_TRUE(tb.finalize().ok());
    left = tb.spawn_module("left", "ma", "lan-a").value();
    right = tb.spawn_module("right", "mc", "lan-c").value();
  }
  ~ThreeLans() {
    if (left) left->stop();
    if (right) right->stop();
  }
};

class ThreeLansTest : public ::testing::TestWithParam<Substrate> {};

INSTANTIATE_TEST_SUITE_P(Backends, ThreeLansTest,
                         ::testing::Values(Substrate::simnet,
                                           Substrate::realnet),
                         substrate_param_name);

TEST_P(ThreeLansTest, TwoHopChainedCircuit) {
  ThreeLans rig(GetParam());
  auto addr = rig.left->commod().locate("right").value();
  ASSERT_TRUE(rig.left->commod().send(addr, to_bytes("across 2 gws")).ok());
  auto in = rig.right->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "across 2 gws");
}

TEST_P(ThreeLansTest, RouteComputationFindsChain) {
  ThreeLans rig(GetParam());
  ResolvedDest dst;
  dst.uadd = rig.right->identity().uadd();
  dst.phys = rig.right->phys();
  dst.net = "lan-c";
  auto route = rig.left->ip().compute_route(dst);
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route.value().size(), 3u);  // gw1 on lan-a, gw2 on lan-b, dst
  EXPECT_EQ(route.value()[0].net, "lan-a");
  EXPECT_EQ(route.value()[1].net, "lan-b");
  EXPECT_EQ(route.value()[2].net, "lan-c");
  EXPECT_EQ(route.value()[2].phys, rig.right->phys().blob);
}

TEST_P(ThreeLansTest, NoRouteToUnknownNetwork) {
  ThreeLans rig(GetParam());
  ResolvedDest dst;
  dst.uadd = UAdd::permanent(424242);
  dst.phys = PhysAddr{"tcp:nowhere:1"};
  dst.net = "lan-z";
  auto route = rig.left->ip().compute_route(dst);
  EXPECT_EQ(route.code(), Errc::no_route);
}

TEST_P(ThreeLansTest, ReplyTraversesChainBackwards) {
  ThreeLans rig(GetParam());
  std::jthread srv([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.right->commod().receive(100ms);
      if (in.ok() && in.value().is_request) {
        (void)rig.right->commod().reply(in.value().reply_ctx,
                                        to_bytes("pong from lan-c"));
      }
    }
  });
  auto addr = rig.left->commod().locate("right").value();
  auto reply = rig.left->commod().request(addr, to_bytes("ping"), 3s);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(to_string(reply.value().payload), "pong from lan-c");
  srv.request_stop();
}

class ReconfigTest : public ::testing::TestWithParam<Substrate> {};

INSTANTIATE_TEST_SUITE_P(Backends, ReconfigTest,
                         ::testing::Values(Substrate::simnet,
                                           Substrate::realnet),
                         substrate_param_name);

TEST_P(ReconfigTest, RelocatedModuleIsFoundTransparently) {
  // §3.5: after an address fault the LCM-Layer obtains a forwarding UAdd
  // and re-establishes the connection; the application keeps using the
  // address it first obtained.
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob").value();
  ASSERT_TRUE(rig.alice->commod().send(bob_addr, to_bytes("gen1")).ok());
  ASSERT_TRUE(rig.bob->commod().receive(2s).ok());

  // Move bob: kill the old module, bring up a new generation elsewhere.
  rig.bob->stop();
  auto bob2 = rig.tb.spawn_module("bob", "sun1", "lan").value();

  ASSERT_TRUE(rig.alice->commod().send(bob_addr, to_bytes("gen2")).ok());
  auto in = bob2->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "gen2");
  // The LCM installed a forwarding entry old -> new.
  EXPECT_EQ(rig.alice->lcm().current_target(bob_addr),
            bob2->identity().uadd());
  EXPECT_GE(rig.alice->lcm().stats().relocations, 1u);
  bob2->stop();
}

TEST_P(ReconfigTest, DeadModuleWithoutReplacementFails) {
  SingleLan rig(GetParam());
  auto bob_addr = rig.alice->commod().locate("bob").value();
  ASSERT_TRUE(rig.alice->commod().send(bob_addr, to_bytes("hi")).ok());
  ASSERT_TRUE(rig.bob->commod().receive(2s).ok());
  rig.bob->stop();
  // Peer death is observed synchronously over simnet but asynchronously
  // over real TCP (EOF/RST races the first send, which may be accepted
  // locally); the contract is that sends *eventually* fail.
  auto st = ntcs::Status::success();
  for (int i = 0; i < 100 && st.ok(); ++i) {
    st = rig.alice->commod().send(bob_addr, to_bytes("to the void"));
    if (st.ok()) std::this_thread::sleep_for(20ms);
  }
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Errc::not_found);  // "no replacement module located"
}

TEST(ReconfigSimnet, NameServerCircuitBreakRecovers) {
  // The §6.3 scenario, patched: the virtual circuit between a module and
  // the Name Server breaks; the next naming-service call must recover via
  // the well-known address instead of recursing to death. Simnet-only:
  // uses fabric partition injection.
  SingleLan rig;
  ASSERT_TRUE(rig.alice->commod().ping_name_server().ok());
  auto lan = rig.tb.fabric().network_by_name("lan").value();
  rig.tb.fabric().set_partitioned(lan, true);
  auto st = rig.alice->commod().ping_name_server();
  rig.tb.fabric().set_partitioned(lan, false);
  // After healing, the naming service is reachable again.
  EXPECT_TRUE(rig.alice->commod().ping_name_server().ok());
  (void)st;  // during the partition the call may fail — that is fine
  EXPECT_EQ(rig.alice->lcm().stats().recursion_trips, 0u);
}

}  // namespace
}  // namespace ntcs::core
