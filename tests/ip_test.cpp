// Unit tests for the IP-Layer and Gateway (S6): route computation shapes,
// stale-topology refresh, blacklist failover, teardown cascades through
// chains, and diamond topologies.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

TEST(IpRoute, DirectWhenSameNetwork) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  ResolvedDest dst{UAdd::permanent(5555), PhysAddr{"tcp:m1:9999"}, "lan"};
  auto route = a->ip().compute_route(dst);
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route.value().size(), 1u);
  EXPECT_EQ(route.value()[0].net, "lan");
  EXPECT_EQ(route.value()[0].phys, "tcp:m1:9999");
  a->stop();
}

TEST(IpRoute, EmptyNetTreatedAsLocal) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  ResolvedDest dst{UAdd::permanent(5555), PhysAddr{"tcp:m1:9999"}, ""};
  auto route = a->ip().compute_route(dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().size(), 1u);
  a->stop();
}

/// Diamond: two parallel two-hop paths a->b->d and a->c->d. BFS must find
/// a shortest (2-gateway) route, never a longer one.
TEST(IpRoute, DiamondPicksShortestPath) {
  Testbed tb;
  for (const char* n : {"net-a", "net-b", "net-c", "net-d"}) tb.net(n);
  tb.machine("ma", Arch::vax780, {"net-a"});
  tb.machine("gab", Arch::apollo_dn330, {"net-a", "net-b"});
  tb.machine("gac", Arch::apollo_dn330, {"net-a", "net-c"});
  tb.machine("gbd", Arch::apollo_dn330, {"net-b", "net-d"});
  tb.machine("gcd", Arch::apollo_dn330, {"net-c", "net-d"});
  tb.machine("md", Arch::sun3, {"net-d"});
  ASSERT_TRUE(tb.start_name_server("ma", "net-a").ok());
  ASSERT_TRUE(tb.add_gateway("g-ab", "gab", {"net-a", "net-b"}).ok());
  ASSERT_TRUE(tb.add_gateway("g-ac", "gac", {"net-a", "net-c"}).ok());
  ASSERT_TRUE(tb.add_gateway("g-bd", "gbd", {"net-b", "net-d"}).ok());
  ASSERT_TRUE(tb.add_gateway("g-cd", "gcd", {"net-c", "net-d"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "ma", "net-a").value();
  auto d = tb.spawn_module("d", "md", "net-d").value();

  ResolvedDest dst{d->identity().uadd(), d->phys(), "net-d"};
  auto route = a->ip().compute_route(dst);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().size(), 3u);  // 2 gateways + destination

  // And traffic actually flows.
  ASSERT_TRUE(a->commod().send(d->identity().uadd(),
                               to_bytes("across the diamond")).ok());
  auto in = d->commod().receive(3s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "across the diamond");
  a->stop();
  d->stop();
}

TEST(IpRoute, BlacklistRoutesAroundDeadAttachment) {
  Testbed tb;
  tb.net("net-a");
  tb.net("net-b");
  tb.machine("ma", Arch::vax780, {"net-a"});
  tb.machine("g1", Arch::apollo_dn330, {"net-a", "net-b"});
  tb.machine("g2", Arch::apollo_dn330, {"net-a", "net-b"});
  tb.machine("mb", Arch::sun3, {"net-b"});
  ASSERT_TRUE(tb.start_name_server("ma", "net-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw-1", "g1", {"net-a", "net-b"}).ok());
  ASSERT_TRUE(tb.add_gateway("gw-2", "g2", {"net-a", "net-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "ma", "net-a").value();
  auto b = tb.spawn_module("b", "mb", "net-b").value();

  ResolvedDest dst{b->identity().uadd(), b->phys(), "net-b"};
  auto route1 = a->ip().compute_route(dst);
  ASSERT_TRUE(route1.ok());
  const std::string first_hop = route1.value()[0].phys;

  a->ip().blacklist_hop(first_hop);
  EXPECT_TRUE(a->ip().hop_blacklisted(first_hop));
  auto route2 = a->ip().compute_route(dst);
  ASSERT_TRUE(route2.ok());
  EXPECT_NE(route2.value()[0].phys, first_hop);  // the other gateway
  a->stop();
  b->stop();
}

TEST(IpRoute, AllGatewaysBlacklistedMeansNoRoute) {
  Testbed tb;
  tb.net("net-a");
  tb.net("net-b");
  tb.machine("ma", Arch::vax780, {"net-a"});
  tb.machine("g1", Arch::apollo_dn330, {"net-a", "net-b"});
  tb.machine("mb", Arch::sun3, {"net-b"});
  ASSERT_TRUE(tb.start_name_server("ma", "net-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw-1", "g1", {"net-a", "net-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "ma", "net-a").value();
  auto b = tb.spawn_module("b", "mb", "net-b").value();
  ResolvedDest dst{b->identity().uadd(), b->phys(), "net-b"};
  auto route = a->ip().compute_route(dst);
  ASSERT_TRUE(route.ok());
  a->ip().blacklist_hop(route.value()[0].phys);
  EXPECT_EQ(a->ip().compute_route(dst).code(), Errc::no_route);
  a->stop();
  b->stop();
}

TEST(IpRoute, TopologyCacheInvalidationRefreshes) {
  Testbed tb;
  tb.net("net-a");
  tb.net("net-b");
  tb.machine("ma", Arch::vax780, {"net-a"});
  tb.machine("g1", Arch::apollo_dn330, {"net-a", "net-b"});
  tb.machine("mb", Arch::sun3, {"net-b"});
  ASSERT_TRUE(tb.start_name_server("ma", "net-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw-1", "g1", {"net-a", "net-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "ma", "net-a").value();
  auto b = tb.spawn_module("b", "mb", "net-b").value();
  ResolvedDest dst{b->identity().uadd(), b->phys(), "net-b"};
  ASSERT_TRUE(a->ip().compute_route(dst).ok());
  const auto fetches1 = a->ip().stats().topology_fetches;
  // Cached: recomputing does not refetch.
  ASSERT_TRUE(a->ip().compute_route(dst).ok());
  EXPECT_EQ(a->ip().stats().topology_fetches, fetches1);
  a->ip().invalidate_topology();
  ASSERT_TRUE(a->ip().compute_route(dst).ok());
  EXPECT_EQ(a->ip().stats().topology_fetches, fetches1 + 1);
  a->stop();
  b->stop();
}

TEST(GatewayChain, MiddleGatewayDeathCascadesTeardown) {
  // §4.3: the teardown propagates link by link "until the originating
  // module is eventually reached".
  Testbed tb;
  for (const char* n : {"n1", "n2", "n3"}) tb.net(n);
  tb.machine("m1", Arch::vax780, {"n1"});
  tb.machine("g12", Arch::apollo_dn330, {"n1", "n2"});
  tb.machine("g23", Arch::apollo_dn330, {"n2", "n3"});
  tb.machine("m3", Arch::sun3, {"n3"});
  ASSERT_TRUE(tb.start_name_server("m1", "n1").ok());
  ASSERT_TRUE(tb.add_gateway("gw-12", "g12", {"n1", "n2"}).ok());
  ASSERT_TRUE(tb.add_gateway("gw-23", "g23", {"n2", "n3"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "n1").value();
  auto c = tb.spawn_module("c", "m3", "n3").value();
  auto addr = a->commod().locate("c").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("before")).ok());
  ASSERT_TRUE(c->commod().receive(2s).ok());
  const auto closed_before = a->ip().stats().ivcs_closed;

  tb.gateway(1).stop();  // kill gw-23, the n2/n3 bridge
  // a's circuit must observe the cascade (ivc_closed at the originator).
  bool observed = false;
  for (int spin = 0; spin < 100; ++spin) {
    if (a->ip().stats().ivcs_closed > closed_before) {
      observed = true;
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(observed);
  // No replacement bridge exists: sends now fail cleanly.
  EXPECT_FALSE(a->commod().send(addr, to_bytes("after")).ok());
  a->stop();
  c->stop();
}

TEST(GatewayChain, ExtendToNonGatewayFailsCleanly) {
  // An EXTEND whose route continues at a plain module must be answered
  // with extend_fail, not dropped.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  // Hand-build a dest that claims b is a gateway hop toward a bogus net.
  ResolvedDest fake{UAdd::permanent(777), PhysAddr{"tcp:m2:1"}, "lan"};
  (void)fake;
  // Use the IP-Layer directly: route through b (not a gateway).
  ResolvedDest dst{UAdd::permanent(777), b->phys(), "lan"};
  auto route = a->ip().compute_route(dst);
  ASSERT_TRUE(route.ok());
  // Opening an IVC straight to b works (b terminal-accepts)...
  auto ok_ivc = a->ip().open_ivc(dst);
  EXPECT_TRUE(ok_ivc.ok());
  a->stop();
  b->stop();
}

TEST(GatewayChain, GatewayStatsCountExtends) {
  Testbed tb;
  tb.net("n1");
  tb.net("n2");
  tb.machine("m1", Arch::vax780, {"n1"});
  tb.machine("g", Arch::apollo_dn330, {"n1", "n2"});
  tb.machine("m2", Arch::sun3, {"n2"});
  ASSERT_TRUE(tb.start_name_server("m1", "n1").ok());
  ASSERT_TRUE(tb.add_gateway("gw", "g", {"n1", "n2"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "n1").value();
  auto b = tb.spawn_module("b", "m2", "n2").value();
  ASSERT_TRUE(
      a->commod().send(b->identity().uadd(), to_bytes("x")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());
  EXPECT_GE(tb.gateway(0).stats().extends_handled, 1u);
  EXPECT_EQ(tb.gateway(0).stats().extends_failed, 0u);
  a->stop();
  b->stop();
}

}  // namespace
}  // namespace ntcs::core
