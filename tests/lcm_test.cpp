// Tests for the LCM-Layer (S7) behaviours not already covered by the
// integration suite: timeouts, the connectionless protocol, forwarding
// chains, the recursion guard (§6.3 — both patched and reproduced), and
// shutdown semantics.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct Rig {
  Testbed tb;
  std::unique_ptr<Node> a;
  std::unique_ptr<Node> b;

  explicit Rig(LcmConfig lcm_cfg = {}) {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    NodeConfig cfg_a = tb.node_config("a", "m1", "lan");
    cfg_a.lcm = lcm_cfg;
    a = std::make_unique<Node>(std::move(cfg_a));
    EXPECT_TRUE(a->start().ok());
    EXPECT_TRUE(a->commod().register_self().ok());
    b = tb.spawn_module("b", "m2", "lan").value();
  }
  ~Rig() {
    if (a) a->stop();
    if (b) b->stop();
  }
};

TEST(LcmLayer, RequestTimesOutAgainstSilentPeer) {
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  // b never replies.
  auto reply = rig.a->commod().request(addr, to_bytes("anyone?"), 100ms);
  EXPECT_EQ(reply.code(), Errc::timeout);
  // The request itself was delivered.
  auto in = rig.b->commod().receive(1s);
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(in.value().is_request);
  // A late reply to the timed-out request is dropped silently.
  EXPECT_TRUE(rig.b->commod().reply(in.value().reply_ctx,
                                    to_bytes("too late")).ok());
  std::this_thread::sleep_for(20ms);
}

TEST(LcmLayer, SubMillisecondTimeoutIsHonored) {
  // Regression guard for duration truncation: a 500µs timeout must stay a
  // 500µs deadline all the way down. Coarsening it to whole milliseconds
  // (or seconds) would turn it into 0 — and 0 must mean "use the
  // configured default", not "infinite" and not "already expired".
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  // b never replies.
  const auto start = std::chrono::steady_clock::now();
  auto reply = rig.a->commod().request(addr, to_bytes("quick"), 500us);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(reply.code(), Errc::timeout);
  // The deadline actually ran: not an instant synchronous failure...
  EXPECT_GE(elapsed, 400us);
  // ...and nowhere near the 5s config default (generous bound: a loaded
  // machine may oversleep, but three orders of magnitude is the tell).
  EXPECT_LT(elapsed, 2s);
}

TEST(LcmLayer, ZeroTimeoutMeansConfiguredDefault) {
  // SendOptions{timeout: 0} falls back to LcmConfig::request_timeout —
  // it must not be taken literally (instant expiry) nor as "forever".
  LcmConfig cfg;
  cfg.request_timeout = 300ms;
  Rig rig(cfg);
  auto addr = rig.a->commod().locate("b").value();
  SendOptions opts;
  opts.timeout = 0ns;
  const auto start = std::chrono::steady_clock::now();
  auto reply = rig.a->lcm().request(addr, Payload::raw(to_bytes("dflt")),
                                    opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(reply.code(), Errc::timeout);
  EXPECT_GE(elapsed, 250ms);  // ran to the configured default...
  EXPECT_LT(elapsed, 3s);     // ...not to some truncated/infinite value
}

TEST(LcmLayer, SubMillisecondTimeoutOnAsyncTicket) {
  // The same guarantee through the pipelined path: the deadline fixed at
  // issue() covers await() at sub-millisecond resolution.
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  auto t = rig.a->commod().request_async(addr, to_bytes("quick"), 700us);
  ASSERT_TRUE(t.ok()) << t.error().to_string();
  const auto start = std::chrono::steady_clock::now();
  auto reply = rig.a->commod().await(t.value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(reply.code(), Errc::timeout);
  EXPECT_LT(elapsed, 2s);
}

TEST(LcmLayer, SendToInvalidUAddRejected) {
  Rig rig;
  EXPECT_EQ(rig.a->commod().send(UAdd{}, to_bytes("x")).code(),
            Errc::bad_argument);
  EXPECT_EQ(rig.a->commod().request(UAdd{}, to_bytes("x")).code(),
            Errc::bad_argument);
  EXPECT_EQ(rig.a->commod().dgram(UAdd{}, to_bytes("x")).code(),
            Errc::bad_argument);
}

TEST(LcmLayer, SendToUnknownUAddNotFound) {
  Rig rig;
  auto st = rig.a->commod().send(UAdd::permanent(99999), to_bytes("x"));
  EXPECT_EQ(st.code(), Errc::not_found);
}

TEST(LcmLayer, DgramDelivered) {
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  ASSERT_TRUE(rig.a->commod().dgram(addr, to_bytes("datagram")).ok());
  auto in = rig.b->commod().receive(1s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "datagram");
  EXPECT_FALSE(in.value().is_request);
}

TEST(LcmLayer, DgramToDeadModuleGivesUpQuickly) {
  // The connectionless protocol has no relocation recovery: one retry.
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  ASSERT_TRUE(rig.a->commod().dgram(addr, to_bytes("warm")).ok());
  (void)rig.b->commod().receive(1s);
  rig.b->stop();
  rig.b.reset();
  auto st = rig.a->commod().dgram(addr, to_bytes("lost"));
  EXPECT_FALSE(st.ok());
}

TEST(LcmLayer, ForwardingChainCompresses) {
  // Three generations of the same module: a's forwarding table must chase
  // old -> mid -> new and then compress to old -> new.
  Rig rig;
  auto gen1 = rig.a->commod().locate("b").value();
  ASSERT_TRUE(rig.a->commod().send(gen1, to_bytes("g1")).ok());
  (void)rig.b->commod().receive(1s);

  rig.b->stop();
  auto gen2 = rig.tb.spawn_module("b", "m2", "lan").value();
  ASSERT_TRUE(rig.a->commod().send(gen1, to_bytes("g2")).ok());
  (void)gen2->commod().receive(1s);

  gen2->stop();
  auto gen3 = rig.tb.spawn_module("b", "m1", "lan").value();
  ASSERT_TRUE(rig.a->commod().send(gen1, to_bytes("g3")).ok());
  auto in = gen3->commod().receive(1s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "g3");
  EXPECT_EQ(rig.a->lcm().current_target(gen1), gen3->identity().uadd());
  EXPECT_GE(rig.a->lcm().stats().relocations, 2u);
  gen2.reset();
  gen3->stop();
  rig.b.reset();
}

TEST(LcmLayer, FaultInKillWindowDoesNotStrandClient) {
  // Regression: a fault handled *between* a module's death and its
  // successor's registration retires the old record at the Name Server
  // (forward -> probe dead -> deregister -> not_found). A later send to
  // the same old UAdd then fails resolution — and must still run the
  // forwarding determination, which now finds the successor.
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  ASSERT_TRUE(rig.a->commod().send(addr, to_bytes("warm")).ok());
  ASSERT_TRUE(rig.b->commod().receive(1s).ok());

  rig.b->stop();  // dead, no successor yet
  // This send faults; the forwarding query confirms death, retires the
  // record, finds nothing, and the send fails — correctly.
  EXPECT_EQ(rig.a->commod().send(addr, to_bytes("gap")).code(),
            Errc::not_found);

  // The successor registers only now.
  auto gen2 = rig.tb.spawn_module("b", "m1", "lan").value();
  // The retried send must reach it despite resolve(old) being not_found.
  ASSERT_TRUE(rig.a->commod().send(addr, to_bytes("found you")).ok());
  auto in = gen2->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "found you");
  gen2->stop();
  rig.b.reset();
}

TEST(LcmLayer, InboundCircuitReusedForReplyTraffic) {
  // After b sends to a, a's sends to b ride the same circuit (reverse
  // mapping) — no new establishment.
  Rig rig;
  auto a_addr = rig.b->commod().locate("a").value();
  ASSERT_TRUE(rig.b->commod().send(a_addr, to_bytes("hi a")).ok());
  auto in = rig.a->commod().receive(1s);
  ASSERT_TRUE(in.ok());
  const auto opened_before = rig.a->ip().stats().ivcs_opened;
  ASSERT_TRUE(rig.a->commod().send(in.value().src, to_bytes("hi b")).ok());
  EXPECT_EQ(rig.a->ip().stats().ivcs_opened, opened_before);
  auto back = rig.b->commod().receive(1s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(back.value().payload), "hi b");
}

TEST(LcmLayer, RecursionGuardTripsWhenBugReproduced) {
  // §6.3 as published: "the ND-Layer ... will see the dead circuit, and
  // recursively run through this whole thing until either the stack
  // overflows, or the connection can be reestablished". With the patch
  // disabled and the Name Server gone for good, the guard must convert
  // the would-be stack overflow into Errc::recursion_limit.
  LcmConfig buggy;
  buggy.reproduce_ns_fault_bug = true;
  buggy.fault_retries = 1;
  Rig rig(buggy);
  ASSERT_TRUE(rig.a->commod().ping_name_server().ok());
  rig.tb.name_server().stop();  // circuit to NS is now permanently dead
  auto st = rig.a->commod().ping_name_server();
  EXPECT_FALSE(st.ok());
  EXPECT_GE(rig.a->lcm().stats().recursion_trips, 1u);
}

TEST(LcmLayer, PatchedFaultHandlerRecoversNameServerCircuit) {
  // Same situation with the patch (default): the dead NS circuit is
  // re-established through the well-known physical address, no recursion.
  Rig rig;
  ASSERT_TRUE(rig.a->commod().ping_name_server().ok());
  // Sever the NS circuit (kill all live channels between a and the NS by
  // bouncing a partition long enough for the fault to register).
  auto lan = rig.tb.fabric().network_by_name("lan").value();
  rig.tb.fabric().set_partitioned(lan, true);
  (void)rig.a->commod().ping_name_server();  // faults
  rig.tb.fabric().set_partitioned(lan, false);
  EXPECT_TRUE(rig.a->commod().ping_name_server().ok());
  EXPECT_EQ(rig.a->lcm().stats().recursion_trips, 0u);
}

TEST(LcmLayer, InternalFlagVisibleToReceiver) {
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  SendOptions opts;
  opts.internal = true;
  ASSERT_TRUE(rig.a->lcm().send(addr, Payload::raw(to_bytes("sys")), opts)
                  .ok());
  auto in = rig.b->commod().receive(1s);
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(in.value().internal);
}

TEST(LcmLayer, ShutdownFailsPendingRequests) {
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  std::jthread requester([&] {
    auto reply = rig.a->commod().request(addr, to_bytes("never"), 5s);
    EXPECT_FALSE(reply.ok());
  });
  std::this_thread::sleep_for(50ms);
  rig.a->stop();
  requester.join();
  rig.a.reset();
}

TEST(LcmLayer, ReplyWithInvalidContextRejected) {
  Rig rig;
  ReplyCtx bogus;
  EXPECT_EQ(rig.a->commod().reply(bogus, to_bytes("x")).code(),
            Errc::bad_argument);
}

TEST(LcmLayer, StatsAccumulate) {
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  ASSERT_TRUE(rig.a->commod().send(addr, to_bytes("1")).ok());
  ASSERT_TRUE(rig.a->commod().dgram(addr, to_bytes("2")).ok());
  const auto s = rig.a->lcm().stats();
  EXPECT_GE(s.sends, 1u);
  EXPECT_GE(s.dgrams, 1u);
  EXPECT_GE(s.requests, 1u);  // the NSP lookups were requests
}

TEST(LcmLayer, ConcurrentRequestersMultiplexOneCircuit) {
  Rig rig;
  std::jthread echo([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.b->commod().receive(50ms);
      if (in.ok() && in.value().is_request) {
        (void)rig.b->commod().reply(in.value().reply_ctx, in.value().payload);
      }
    }
  });
  auto addr = rig.a->commod().locate("b").value();
  constexpr int kThreads = 8;
  constexpr int kEach = 25;
  std::vector<std::jthread> workers;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        const std::string body = std::to_string(t) + ":" + std::to_string(i);
        auto reply = rig.a->commod().request(addr, to_bytes(body), 5s);
        if (reply.ok() && to_string(reply.value().payload) == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  workers.clear();  // join
  EXPECT_EQ(ok.load(), kThreads * kEach);
  echo.request_stop();
}

}  // namespace
}  // namespace ntcs::core
