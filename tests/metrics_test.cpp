// Tests for the per-layer metrics registry (common/metrics.h): counter and
// histogram semantics, snapshot/delta arithmetic, thread safety, and the
// end-to-end claims — a 2-hop send bumps ip.hops_forwarded on each gateway
// it traverses, and killed-channel recovery is exactly one lcm.reconnect.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

// ------------------------------------------------------------------ units

TEST(Metrics, CounterFetchOrCreateIsStable) {
  metrics::MetricsRegistry reg;
  metrics::Counter& a = reg.counter("layer.events");
  metrics::Counter& b = reg.counter("layer.events");
  EXPECT_EQ(&a, &b);  // call sites may cache the reference
  a.inc();
  a.inc(41);
  EXPECT_EQ(b.value(), 42u);
  EXPECT_EQ(reg.counter("layer.other").value(), 0u);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  metrics::MetricsRegistry reg;
  metrics::Histogram& h = reg.histogram("layer.lat_ns");
  h.record(std::uint64_t{0});    // bucket 0: exactly zero
  h.record(std::uint64_t{1});    // bucket 1: [1, 2)
  h.record(std::uint64_t{5});    // bucket 3: [4, 8)
  h.record(std::uint64_t{7});    // bucket 3 again
  h.record(~std::uint64_t{0});   // clamped into the last bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1u + 5u + 7u + ~std::uint64_t{0});
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(metrics::kHistogramBuckets - 1), 1u);
  h.record(-3ns);  // negative durations clamp to zero, never underflow
  EXPECT_EQ(h.bucket(0), 2u);
}

TEST(Metrics, PercentilesInterpolateWithinBuckets) {
  metrics::MetricsRegistry reg;
  metrics::Histogram& h = reg.histogram("layer.lat_ns");
  EXPECT_EQ(h.percentile(0.50), 0.0);  // empty histogram

  // 100 samples spread over one bucket, [64, 128): ranks interpolate
  // linearly across the bucket's span.
  for (int i = 0; i < 100; ++i) h.record(std::uint64_t{100});
  EXPECT_GE(h.percentile(0.50), 64.0);
  EXPECT_LE(h.percentile(0.50), 128.0);
  EXPECT_LT(h.percentile(0.10), h.percentile(0.90));

  // A distinct tail: 10 samples land in [1024, 2048), so p99 must sit in
  // the tail bucket while p50 stays in the body.
  for (int i = 0; i < 10; ++i) h.record(std::uint64_t{1500});
  EXPECT_LE(h.percentile(0.50), 128.0);
  EXPECT_GE(h.percentile(0.99), 1024.0);
  EXPECT_LE(h.percentile(0.99), 2048.0);

  // Zeros occupy bucket 0 and report exactly zero; out-of-range p clamps.
  metrics::Histogram& z = reg.histogram("layer.zeros");
  for (int i = 0; i < 5; ++i) z.record(std::uint64_t{0});
  EXPECT_EQ(z.percentile(0.99), 0.0);
  EXPECT_EQ(z.percentile(-1.0), 0.0);
  EXPECT_GE(h.percentile(2.0), 1024.0);  // clamps to the max rank

  // The snapshot side agrees with the live histogram, and the JSON dump
  // carries the interpolated keys.
  const metrics::Snapshot snap = reg.snapshot();
  const metrics::MetricValue* v = snap.find("layer.lat_ns");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->percentile(0.99), h.percentile(0.99));
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p90_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
}

TEST(Metrics, UntouchedMetricsNeverAppearInSnapshots) {
  metrics::MetricsRegistry reg;
  reg.counter("touched").inc();
  metrics::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.values.size(), 1u);
  EXPECT_NE(snap.find("touched"), nullptr);
  EXPECT_EQ(snap.find("never-touched"), nullptr);
  EXPECT_EQ(snap.value("never-touched"), 0u);
}

TEST(Metrics, SnapshotDeltaSubtractsPerName) {
  metrics::MetricsRegistry reg;
  metrics::Counter& c = reg.counter("layer.sends");
  metrics::Histogram& h = reg.histogram("layer.wait_ns");
  c.inc(10);
  h.record(std::uint64_t{3});
  metrics::Snapshot before = reg.snapshot();

  c.inc(5);
  h.record(std::uint64_t{3});
  h.record(std::uint64_t{100});
  reg.counter("layer.new").inc(7);  // born after `before`
  metrics::Snapshot after = reg.snapshot();

  metrics::Snapshot d = after.delta(before);
  EXPECT_EQ(d.value("layer.sends"), 5u);
  EXPECT_EQ(d.value("layer.new"), 7u);  // missing-from-before keeps its value
  const metrics::MetricValue* hv = d.find("layer.wait_ns");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->kind, metrics::MetricKind::histogram);
  EXPECT_EQ(hv->count, 2u);
  EXPECT_EQ(hv->sum, 103u);
  ASSERT_GT(hv->buckets.size(), 2u);
  EXPECT_EQ(hv->buckets[2], 1u);  // the second record(3) survives the delta
}

TEST(Metrics, ToJsonCarriesBothKinds) {
  metrics::MetricsRegistry reg;
  reg.counter("lcm.sends").inc(3);
  reg.histogram("ali.recv_wait_ns").record(std::uint64_t{9});
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"lcm.sends\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"ali.recv_wait_ns\""), std::string::npos);
}

TEST(Metrics, ConcurrentIncrementsFromEightThreadsLoseNothing) {
  metrics::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::jthread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Mix creation races (fetch-or-create under contention) with the
      // hot-path relaxed adds.
      metrics::Counter& c = reg.counter("contended.counter");
      metrics::Histogram& h = reg.histogram("contended.hist");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  workers.clear();  // join all
  EXPECT_EQ(reg.counter("contended.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  metrics::Histogram& h = reg.histogram("contended.hist");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < metrics::kHistogramBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

// ------------------------------------------------------------- end-to-end

TEST(Metrics, TwoHopSendBumpsHopsForwardedOnEachGateway) {
  // A chain of three networks joined by two gateways: every message from
  // src to dst is relayed by both, so each send adds exactly 2 to the
  // process-wide ip.hops_forwarded.
  Testbed tb;
  tb.net("net-0");
  tb.net("net-1");
  tb.net("net-2");
  tb.machine("m-src", Arch::vax780, {"net-0"});
  tb.machine("m-gw0", Arch::apollo_dn330, {"net-0", "net-1"});
  tb.machine("m-gw1", Arch::apollo_dn330, {"net-1", "net-2"});
  tb.machine("m-dst", Arch::sun3, {"net-2"});
  ASSERT_TRUE(tb.start_name_server("m-src", "net-0").ok());
  ASSERT_TRUE(tb.add_gateway("gw-0", "m-gw0", {"net-0", "net-1"}).ok());
  ASSERT_TRUE(tb.add_gateway("gw-1", "m-gw1", {"net-1", "net-2"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto src = tb.spawn_module("src", "m-src", "net-0").value();
  auto dst = tb.spawn_module("dst", "m-dst", "net-2").value();
  auto addr = src->commod().locate("dst").value();

  // Warm the circuit so the measured window is pure data relaying.
  ASSERT_TRUE(src->commod().send(addr, to_bytes("warm")).ok());
  ASSERT_TRUE(dst->commod().receive(2s).ok());

  metrics::Snapshot before = metrics::MetricsRegistry::instance().snapshot();
  constexpr std::uint64_t kSends = 3;
  for (std::uint64_t i = 0; i < kSends; ++i) {
    ASSERT_TRUE(src->commod().send(addr, to_bytes("hop-hop")).ok());
    ASSERT_TRUE(dst->commod().receive(2s).ok());
  }
  metrics::Snapshot d =
      metrics::MetricsRegistry::instance().snapshot().delta(before);
  EXPECT_EQ(d.value("ip.hops_forwarded"), 2 * kSends);
  EXPECT_EQ(d.value("lcm.sends"), kSends);
  EXPECT_EQ(d.value("lcm.received"), kSends);
  src->stop();
  dst->stop();
}

TEST(Metrics, KilledChannelRecoveryIsExactlyOneReconnect) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("one")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());

  // Kill only the newest live channel: channel ids are sequential, and the
  // a<->b circuit was established last (after both Name-Server circuits),
  // so recovery's own naming traffic rides intact circuits and the only
  // reconnect in the window is the one we forced.
  bool killed = false;
  for (simnet::ChannelId c = 63; c >= 1 && !killed; --c) {
    if (tb.fabric().kill_channel(c).ok()) killed = true;
  }
  ASSERT_TRUE(killed);

  metrics::Snapshot before = metrics::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("two")).ok());
  auto in = b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "two");
  metrics::Snapshot d =
      metrics::MetricsRegistry::instance().snapshot().delta(before);
  // Exactly once — whether the send tripped over the dead handle or the
  // closed notification cleaned up first, the re-establishment is counted
  // a single time.
  EXPECT_EQ(d.value("lcm.reconnects"), 1u);
  a->stop();
  b->stop();
}

}  // namespace
}  // namespace ntcs::core
