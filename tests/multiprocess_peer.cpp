// multiprocess_peer — the helper binary fork/exec'd by multiprocess_test.
//
// Each invocation is ONE real OS process holding one corner of a
// multi-process NTCS fabric over loopback TCP. The only shared knowledge
// between processes is the well-known Name Server port passed on the
// command line (§bootstrap: well-known physical addresses).
//
//   multiprocess_peer server <ns_port>
//       Starts the Name Server on the fixed port plus an "echo" module,
//       prints "READY" on stdout, serves requests ("echo:" + payload)
//       until stdin reaches EOF (the parent closing its pipe end is the
//       shutdown signal), then tears everything down and exits 0.
//
//   multiprocess_peer client <ns_port> <id> <requests>
//       Builds a Node whose well-known table points at the server
//       process, registers, locates "echo", runs a pipelined
//       request_async exchange, verifies every reply, exits 0 on success.
#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/testbed.h"
#include "realnet/tcp_backend.h"

using namespace std::chrono_literals;

namespace {

int run_server(std::uint16_t ns_port) {
  ntcs::realnet::TcpConfig tc;
  tc.fixed_ports["name-server"] = ns_port;
  ntcs::core::Testbed tb(tc);
  if (!tb.start_name_server("host", "lan").ok()) return 10;
  if (!tb.finalize().ok()) return 11;
  auto echo = tb.spawn_module("echo", "host", "lan");
  if (!echo.ok()) return 12;

  std::printf("READY\n");
  std::fflush(stdout);

  // Serve until the parent closes our stdin.
  for (;;) {
    pollfd pfd{0, POLLIN, 0};
    if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
      char buf[64];
      if (::read(0, buf, sizeof(buf)) <= 0) break;
    }
    auto in = echo.value()->commod().receive(100ms);
    if (!in.ok()) continue;
    if (in.value().is_request) {
      const std::string answer =
          "echo:" + ntcs::to_string(in.value().payload);
      (void)echo.value()->commod().reply(in.value().reply_ctx,
                                         ntcs::to_bytes(answer));
    }
  }
  echo.value()->stop();
  return 0;
}

int run_client(std::uint16_t ns_port, int id, int requests) {
  ntcs::core::NodeConfig cfg;
  cfg.name = "client-" + std::to_string(id);
  cfg.backend = std::make_shared<ntcs::realnet::TcpBackend>();
  cfg.net = "lan";
  cfg.well_known.name_server_phys =
      ntcs::core::PhysAddr{ntcs::realnet::format_tcp_phys("127.0.0.1",
                                                          ns_port)};
  cfg.well_known.name_server_net = "lan";
  ntcs::core::Node node(std::move(cfg));
  if (!node.start().ok()) return 20;
  if (!node.commod().register_self().ok()) return 21;

  // The server process may still be coming up; locate with patience.
  ntcs::Result<ntcs::core::UAdd> echo =
      ntcs::Error(ntcs::Errc::not_found, "not yet");
  for (int i = 0; i < 100 && !echo.ok(); ++i) {
    echo = node.commod().locate("echo");
    if (!echo.ok()) std::this_thread::sleep_for(50ms);
  }
  if (!echo.ok()) return 22;

  // Pipelined exchange: a window of requests in flight per wave.
  constexpr int kWindow = 8;
  int sent = 0;
  while (sent < requests) {
    std::vector<std::pair<int, ntcs::core::RequestTicket>> wave;
    for (int w = 0; w < kWindow && sent < requests; ++w, ++sent) {
      const std::string body =
          "c" + std::to_string(id) + "-" + std::to_string(sent);
      auto t = node.commod().request_async(echo.value(),
                                           ntcs::to_bytes(body), 10s);
      if (!t.ok()) return 23;
      wave.emplace_back(sent, std::move(t.value()));
    }
    for (auto& [seq, ticket] : wave) {
      auto reply = node.commod().await(ticket);
      if (!reply.ok()) return 24;
      const std::string expect =
          "echo:c" + std::to_string(id) + "-" + std::to_string(seq);
      if (ntcs::to_string(reply.value().payload) != expect) return 25;
    }
  }

  if (!node.commod().deregister().ok()) return 26;
  node.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s server <ns_port> | client <ns_port> <id> <n>\n",
                 argv[0]);
    return 2;
  }
  const std::string role = argv[1];
  const auto ns_port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  if (role == "server") return run_server(ns_port);
  if (role == "client" && argc >= 5) {
    return run_client(ns_port, std::atoi(argv[3]), std::atoi(argv[4]));
  }
  return 2;
}
