// The multi-process loopback test: real OS processes form an NTCS fabric
// over real TCP, bootstrapped only by a well-known host:port — the §3.2
// bootstrap story, executed for real.
//
// The orchestrating gtest process fork/execs the multiprocess_peer helper
// (see multiprocess_peer.cpp): one server process (Name Server + echo
// module on the well-known port) and two client processes that register,
// locate the echo service by name, and run a pipelined request exchange.
// The assertion of value is at the end: every process exits 0 — requests
// all answered, shutdown clean (no wedged listener/reader thread keeps a
// child alive past the waitpid timeout).
#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backend_harness.h"

#ifndef NTCS_MULTIPROCESS_PEER
#error "NTCS_MULTIPROCESS_PEER (helper binary path) must be defined"
#endif

namespace {

using ntcs::core::harness::reserve_loopback_port;

struct Child {
  pid_t pid = -1;
  int stdin_wr = -1;   // parent's write end of the child's stdin
  int stdout_rd = -1;  // parent's read end of the child's stdout
};

Child spawn(const std::vector<std::string>& args) {
  int in_pipe[2], out_pipe[2];
  EXPECT_EQ(::pipe(in_pipe), 0);
  EXPECT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(in_pipe[0], 0);
    ::dup2(out_pipe[1], 1);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(NTCS_MULTIPROCESS_PEER));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(NTCS_MULTIPROCESS_PEER, argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  return Child{pid, in_pipe[1], out_pipe[0]};
}

/// Read the child's stdout until a line equal to `line` arrives.
bool await_line(const Child& c, const std::string& line, int timeout_ms) {
  std::string buf;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{c.stdout_rd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    char chunk[256];
    const ssize_t n = ::read(c.stdout_rd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.find(line + "\n") != std::string::npos) return true;
  }
  return false;
}

/// Wait for exit with a deadline; SIGKILL on overrun (then the test
/// fails — a clean shutdown never needs the kill).
int await_exit(const Child& c, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
    if (r == c.pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      return -WTERMSIG(status);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(c.pid, SIGKILL);
      ::waitpid(c.pid, &status, 0);
      return -999;  // did not shut down on its own
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void close_child_fds(const Child& c) {
  if (c.stdin_wr >= 0) ::close(c.stdin_wr);
  if (c.stdout_rd >= 0) ::close(c.stdout_rd);
}

TEST(Multiprocess, ThreeProcessesBootstrapExchangeAndShutDownCleanly) {
  const std::uint16_t ns_port = reserve_loopback_port();
  const std::string port_str = std::to_string(ns_port);

  // Process 1: Name Server + echo service on the well-known port.
  Child server = spawn({"server", port_str});
  ASSERT_TRUE(await_line(server, "READY", 10000))
      << "server process never became ready";

  // Processes 2 and 3: clients that know only the well-known address.
  Child c1 = spawn({"client", port_str, "1", "32"});
  Child c2 = spawn({"client", port_str, "2", "32"});

  EXPECT_EQ(await_exit(c1, 30000), 0) << "client 1 failed";
  EXPECT_EQ(await_exit(c2, 30000), 0) << "client 2 failed";
  close_child_fds(c1);
  close_child_fds(c2);

  // Closing the server's stdin is the shutdown signal; it must exit 0
  // promptly (listener thread, channel readers and Name Server all wind
  // down without being killed).
  ::close(server.stdin_wr);
  server.stdin_wr = -1;
  EXPECT_EQ(await_exit(server, 15000), 0) << "server shutdown not clean";
  close_child_fds(server);
}

TEST(Multiprocess, ServerSurvivesAClientKilledMidExchange) {
  const std::uint16_t ns_port = reserve_loopback_port();
  const std::string port_str = std::to_string(ns_port);

  Child server = spawn({"server", port_str});
  ASSERT_TRUE(await_line(server, "READY", 10000));

  // A long-running client, killed hard mid-exchange: real peer death.
  Child victim = spawn({"client", port_str, "7", "100000"});
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::kill(victim.pid, SIGKILL);
  int status = 0;
  ::waitpid(victim.pid, &status, 0);
  close_child_fds(victim);

  // The server must keep serving a fresh, well-behaved client.
  Child c = spawn({"client", port_str, "8", "16"});
  EXPECT_EQ(await_exit(c, 30000), 0)
      << "server did not survive a killed peer";
  close_child_fds(c);

  ::close(server.stdin_wr);
  server.stdin_wr = -1;
  EXPECT_EQ(await_exit(server, 15000), 0);
  close_child_fds(server);
}

}  // namespace
