// naming_scale_test.cpp — conformance, property and chaos suites for the
// sharded, replicated name service (ctest label: naming).
//
// Four suites:
//
//  * NamingConformance (TEST_P over simnet + realnet): the sharded name
//    service honours the same NSP contract as the classic single Name
//    Server — register/lookup/resolve/deregister route to the owning
//    shard, a stale shard topology yields the *retriable*
//    Errc::wrong_shard (never a silent wrong answer), leases serve
//    repeats locally, module moves bump the shard epoch, and a killed
//    primary fails over to its warm standby.
//
//  * ShardRing: the consistent-hash ring invariants — adding a shard
//    remaps only ~1/(N+1) of the names and strictly *to the new shard*,
//    placement is balanced across shards, and placement depends on
//    nothing but the shard count (NTCS_FABRIC_SEED sweeps this whole
//    binary; the ring must agree across every seed or clients and
//    servers built under different seeds would disagree on ownership).
//
//  * NamingChurnProperty (simnet): a seeded random register/move/kill/
//    failover schedule under a faulty FaultPlan network. After every
//    step, every client either resolves a name to its *current* module
//    (proved by an end-to-end request answered with the current
//    generation tag) or gets a retriable error — a stale lease may yield
//    an address fault and a retry, but never a reply from a dead
//    generation.
//
//  * NamingChaos: kill a shard primary in the middle of a lookup storm
//    over a duplicating/reordering/flapping network; the standby must
//    take over, the storm must observe only retriable errors, the lock
//    validator must stay silent, and the global ns.failovers /
//    nsp.cache_invalidations metrics must reconcile with the per-server
//    and per-client stats actually observed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backend_harness.h"
#include "common/annotated.h"
#include "common/metrics.h"
#include "core/nsp/shard_map.h"
#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

std::uint64_t fabric_seed() {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 1;
}

std::uint64_t metric(const char* name) {
  return metrics::MetricsRegistry::instance().snapshot().value(name);
}

/// The errors a naming client is allowed to see under churn: every one of
/// them says "try again", none of them is a wrong answer.
bool retriable(ntcs::Errc e) {
  switch (e) {
    case ntcs::Errc::timeout:
    case ntcs::Errc::not_found:
    case ntcs::Errc::wrong_shard:
    case ntcs::Errc::address_fault:
    case ntcs::Errc::no_route:
    case ntcs::Errc::closed:
    case ntcs::Errc::refused:
    case ntcs::Errc::overloaded:
    case ntcs::Errc::partitioned:
      return true;
    default:
      return false;
  }
}

/// A name guaranteed to be owned by `shard` under an N-shard ring, found
/// by deterministic search — both sides compute the same FNV ring, so the
/// test can place load on a specific shard by construction.
std::string name_owned_by(std::size_t shard, std::size_t num_shards,
                          const std::string& stem) {
  const nsp::ShardMap map(num_shards);
  for (int i = 0;; ++i) {
    std::string cand = stem + std::to_string(i);
    if (map.shard_of(cand) == shard) return cand;
  }
}

/// Sharded three-machine rig over either substrate: 3 shards, each with a
/// warm standby on the next machine over.
struct ShardRig {
  static constexpr std::size_t kShards = 3;
  Testbed tb;

  explicit ShardRig(harness::BackendKind kind, std::uint64_t lease_ms = 2000)
      : tb(fabric_seed(), kind == harness::BackendKind::simnet
                              ? Substrate::simnet
                              : Substrate::realnet) {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    tb.machine("m3", Arch::apollo_dn330, {"lan"});
    EXPECT_TRUE(tb.start_name_service(kShards, {"m1", "m2", "m3"}, "lan",
                                      /*with_standbys=*/true, lease_ms)
                    .ok());
    EXPECT_TRUE(tb.finalize().ok());
  }
};

/// A module that answers every request with a fixed generation tag, so a
/// client can prove end-to-end *which* incarnation its resolution reached.
struct EchoMod {
  std::unique_ptr<Node> node;
  std::jthread loop;
  std::string tag;

  EchoMod(Testbed& tb, const std::string& name, const std::string& machine,
          std::string gen_tag)
      : tag(std::move(gen_tag)) {
    node = tb.spawn_module(name, machine, "lan").value();
    loop = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = node->commod().receive(50ms);
        if (in.ok() && in.value().is_request) {
          (void)node->commod().reply(in.value().reply_ctx, to_bytes(tag));
        }
      }
    });
  }

  ~EchoMod() { stop(); }

  void stop() {
    if (!node) return;
    loop.request_stop();
    if (loop.joinable()) loop.join();
    node->stop();
    node.reset();
  }

  UAdd uadd() const { return node->identity().uadd(); }
};

// ========================================================== conformance

class NamingConformance
    : public ::testing::TestWithParam<harness::BackendKind> {};

TEST_P(NamingConformance, LookupsRouteToTheOwningShard) {
  ShardRig rig(GetParam());
  const nsp::ShardMap map(ShardRig::kShards);

  // Nine modules spread over the machines; record each shard's expected
  // ownership count from the client-side ring.
  std::vector<std::unique_ptr<Node>> mods;
  std::vector<std::string> names;
  std::vector<std::size_t> owned(ShardRig::kShards, 0);
  const char* machines[] = {"m1", "m2", "m3"};
  for (int i = 0; i < 9; ++i) {
    names.push_back("conf-mod-" + std::to_string(i));
    ++owned[map.shard_of(names.back())];
    mods.push_back(
        rig.tb.spawn_module(names.back(), machines[i % 3], "lan").value());
  }

  std::vector<std::uint64_t> lookups_before;
  for (std::size_t s = 0; s < ShardRig::kShards; ++s) {
    lookups_before.push_back(rig.tb.shard(s).stats().lookups);
  }

  auto client = rig.tb.spawn_module("conf-client", "m1", "lan").value();
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto addr = client->commod().locate(names[i]);
    ASSERT_TRUE(addr.ok()) << names[i] << ": " << addr.error().what();
    EXPECT_EQ(addr.value(), mods[i]->identity().uadd()) << names[i];
  }

  // Every lookup was served by exactly the shard the ring names as owner.
  for (std::size_t s = 0; s < ShardRig::kShards; ++s) {
    EXPECT_EQ(rig.tb.shard(s).stats().lookups - lookups_before[s], owned[s])
        << "shard " << s;
  }

  for (auto& m : mods) m->stop();
  client->stop();
}

TEST_P(NamingConformance, ResolveAndDeregisterFollowTheUAddStripe) {
  ShardRig rig(GetParam());
  auto mod = rig.tb.spawn_module("stripe-mod", "m2", "lan").value();
  auto client = rig.tb.spawn_module("stripe-client", "m1", "lan").value();

  const UAdd u = mod->identity().uadd();
  auto info = client->nsp().resolve_info(u);
  ASSERT_TRUE(info.ok()) << info.error().what();
  EXPECT_EQ(info.value().name, "stripe-mod");

  ASSERT_TRUE(client->nsp().deregister(u).ok());
  client->nsp().debug_force_expire("stripe-mod");
  auto gone = client->commod().locate("stripe-mod");
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.code(), ntcs::Errc::not_found);

  mod->stop();
  client->stop();
}

TEST_P(NamingConformance, StaleShardTopologyGetsRetriableWrongShard) {
  ShardRig rig(GetParam());
  // A name owned by a non-zero shard, registered normally.
  const std::string name = name_owned_by(1, ShardRig::kShards, "stale-top-");
  auto mod = rig.tb.spawn_module(name, "m2", "lan").value();

  // A client whose well-known table is stale: it only knows about shard 0
  // and therefore computes a single-shard ring. Its lookup lands on shard
  // 0, which does not own the name — the reply must be the retriable
  // wrong_shard, never not_found (which would read as an authoritative
  // "no such module").
  NodeConfig cfg = rig.tb.node_config("stale-client", "m1", "lan");
  cfg.well_known.shards.resize(1);
  auto stale = std::make_unique<Node>(std::move(cfg));
  ASSERT_TRUE(stale->start().ok());

  const std::uint64_t rejects_before = rig.tb.shard(0).stats().wrong_shard;
  auto miss = stale->nsp().lookup(name);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), ntcs::Errc::wrong_shard);
  EXPECT_TRUE(retriable(miss.code()));
  EXPECT_GT(rig.tb.shard(0).stats().wrong_shard, rejects_before);

  // Recovery: installing the current topology makes the same lookup work.
  stale->install_well_known(rig.tb.well_known());
  auto hit = stale->nsp().lookup(name);
  ASSERT_TRUE(hit.ok()) << hit.error().what();
  EXPECT_EQ(hit.value(), mod->identity().uadd());

  stale->stop();
  mod->stop();
}

TEST_P(NamingConformance, LeasesServeRepeatLookupsLocally) {
  ShardRig rig(GetParam());
  auto mod = rig.tb.spawn_module("leased-mod", "m3", "lan").value();
  auto client = rig.tb.spawn_module("lease-client", "m1", "lan").value();

  const nsp::ShardMap map(ShardRig::kShards);
  const std::size_t owner = map.shard_of("leased-mod");
  const std::uint64_t server_before = rig.tb.shard(owner).stats().lookups;
  const auto client_before = client->nsp().stats();

  constexpr int kRepeats = 25;
  for (int i = 0; i < kRepeats; ++i) {
    auto addr = client->commod().locate("leased-mod");
    ASSERT_TRUE(addr.ok());
    EXPECT_EQ(addr.value(), mod->identity().uadd());
  }

  const auto client_after = client->nsp().stats();
  // One server round trip; every repeat came out of the lease cache.
  EXPECT_EQ(rig.tb.shard(owner).stats().lookups - server_before, 1u);
  EXPECT_EQ(client_after.lease_misses - client_before.lease_misses, 1u);
  EXPECT_EQ(client_after.lease_hits - client_before.lease_hits,
            static_cast<std::uint64_t>(kRepeats - 1));

  auto lease = client->nsp().lease_peek("leased-mod");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->shard, owner);
  EXPECT_EQ(lease->uadd, mod->identity().uadd());

  mod->stop();
  client->stop();
}

TEST_P(NamingConformance, ModuleMoveBumpsTheEpochAndRefreshesTheLease) {
  ShardRig rig(GetParam());
  const nsp::ShardMap map(ShardRig::kShards);
  const std::size_t owner = map.shard_of("mover");

  auto gen1 = rig.tb.spawn_module("mover", "m1", "lan").value();
  auto client = rig.tb.spawn_module("move-client", "m2", "lan").value();

  auto first = client->commod().locate("mover");
  ASSERT_TRUE(first.ok());
  auto lease1 = client->nsp().lease_peek("mover");
  ASSERT_TRUE(lease1.has_value());
  const std::uint64_t epoch1 = rig.tb.shard(owner).epoch();
  EXPECT_EQ(lease1->epoch, epoch1);

  // The move: the old incarnation dies, a new one registers under the same
  // name on another machine. The owning shard detects the re-registration
  // and bumps its epoch so every lease granted before the move dies.
  gen1->stop();
  auto gen2 = rig.tb.spawn_module("mover", "m3", "lan").value();
  EXPECT_EQ(rig.tb.shard(owner).epoch(), epoch1 + 1);

  client->nsp().debug_force_expire("mover");
  auto second = client->commod().locate("mover");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), gen2->identity().uadd());
  EXPECT_NE(second.value(), first.value());
  auto lease2 = client->nsp().lease_peek("mover");
  ASSERT_TRUE(lease2.has_value());
  EXPECT_EQ(lease2->epoch, epoch1 + 1);

  gen2->stop();
  client->stop();
}

TEST_P(NamingConformance, KilledPrimaryFailsOverToTheWarmStandby) {
  ShardRig rig(GetParam());
  const nsp::ShardMap map(ShardRig::kShards);

  // A target owned by shard 1, plus a client that has already resolved it.
  const std::string target_name =
      name_owned_by(1, ShardRig::kShards, "fo-target-");
  EchoMod target(rig.tb, target_name, "m2", "gen-1");
  auto client = rig.tb.spawn_module("fo-client", "m1", "lan").value();
  auto before = client->commod().locate(target_name);
  ASSERT_TRUE(before.ok());

  const std::uint64_t failovers_before = metric("ns.failovers");
  ASSERT_TRUE(rig.tb.shard_has_standby(1));
  const std::uint64_t epoch_before = rig.tb.shard_standby(1).epoch();

  rig.tb.kill_shard_primary(1);

  // Reads fail over transparently: candidate rotation retargets the shard
  // UAdd at the standby.
  client->nsp().debug_force_expire(target_name);
  auto after = client->commod().locate(target_name);
  ASSERT_TRUE(after.ok()) << after.error().what();
  EXPECT_EQ(after.value(), target.uadd());

  // The first *write* reaching the standby makes it probe the dead primary
  // and promote itself under a bumped epoch.
  const std::string write_name =
      name_owned_by(1, ShardRig::kShards, "fo-write-");
  auto writer = rig.tb.spawn_module(write_name, "m3", "lan").value();
  EXPECT_EQ(rig.tb.shard_standby(1).role(), NsRole::primary);
  EXPECT_GT(rig.tb.shard_standby(1).epoch(), epoch_before);
  EXPECT_GT(metric("ns.failovers"), failovers_before);

  // End-to-end: the promoted shard serves the whole contract.
  auto via_standby = client->commod().locate(write_name);
  ASSERT_TRUE(via_standby.ok());
  EXPECT_EQ(via_standby.value(), writer->identity().uadd());
  auto ri = client->nsp().resolve_info(after.value());
  ASSERT_TRUE(ri.ok()) << ri.error().what();
  EXPECT_EQ(ri.value().phys.blob, target.node->phys().blob);
  auto reply = client->commod().request(after.value(), to_bytes("who"), 5s);
  ASSERT_TRUE(reply.ok()) << reply.error().what();
  EXPECT_EQ(to_string(reply.value().payload), "gen-1");

  writer->stop();
  client->stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, NamingConformance,
                         ::testing::Values(harness::BackendKind::simnet,
                                           harness::BackendKind::realnet),
                         [](const auto& info) {
                           return harness::backend_param_name(info.param);
                         });

// ===================================================== ring invariants

TEST(ShardRing, AddingAShardRemapsOnlyItsFractionAndOnlyToIt) {
  constexpr int kKeys = 20000;
  for (std::size_t n : {2u, 4u, 8u}) {
    const nsp::ShardMap before(n);
    const nsp::ShardMap after(n + 1);
    int moved = 0;
    int cross_moved = 0;
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "ring-key-" + std::to_string(i);
      const std::size_t sa = before.shard_of(key);
      const std::size_t sb = after.shard_of(key);
      if (sa == sb) continue;
      ++moved;
      if (sb != n) ++cross_moved;  // moved, but not to the new shard
    }
    // Consistent hashing: a new shard only ever *claims* keys; no key may
    // shuffle between two pre-existing shards.
    EXPECT_EQ(cross_moved, 0) << n << " -> " << n + 1 << " shards";
    // And it claims roughly its fair share, ~1/(n+1) of the space. The
    // bound is loose (vnode placement is hash-lumpy) but pins the order of
    // magnitude: far below "rehash everything", far above "claims nothing".
    const double frac = static_cast<double>(moved) / kKeys;
    const double ideal = 1.0 / static_cast<double>(n + 1);
    EXPECT_GT(frac, ideal / 4) << n << " -> " << n + 1 << " shards";
    EXPECT_LT(frac, ideal * 4) << n << " -> " << n + 1 << " shards";
  }
}

TEST(ShardRing, PlacementIsBalanced) {
  constexpr int kKeys = 20000;
  constexpr std::size_t kShards = 4;
  const nsp::ShardMap map(kShards);
  std::vector<int> per_shard(kShards, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++per_shard[map.shard_of("balance-key-" + std::to_string(i))];
  }
  const int ideal = kKeys / static_cast<int>(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(per_shard[s], ideal / 3) << "shard " << s;
    EXPECT_LT(per_shard[s], ideal * 3) << "shard " << s;
  }
}

TEST(ShardRing, PlacementDependsOnNothingButTheShardCount) {
  // The whole naming suite is swept across fabric seeds via
  // NTCS_FABRIC_SEED. Placement must be identical under every seed —
  // clients and servers never exchange the ring, they *recompute* it, so
  // any environmental input would split the cluster's view of ownership.
  // Mixing the env seed into the constructed maps proves indirectly that
  // the ring has no seed parameter at all; two independently built maps
  // must agree point-for-point, and the owner routing must agree with a
  // live rig built under the same env seed.
  const nsp::ShardMap a(5);
  const nsp::ShardMap b(5);
  for (int i = 0; i < 2000; ++i) {
    const std::string key =
        "seed-key-" + std::to_string(fabric_seed()) + "-" + std::to_string(i);
    ASSERT_EQ(a.shard_of(key), b.shard_of(key)) << key;
  }

  ShardRig rig(harness::BackendKind::simnet);
  const nsp::ShardMap client_side(ShardRig::kShards);
  auto mod = rig.tb.spawn_module("seed-pin", "m1", "lan").value();
  const std::size_t owner = client_side.shard_of("seed-pin");
  // The server-side ring placed the registration on the same shard the
  // client-side ring predicts, whatever seed this run uses.
  EXPECT_TRUE(rig.tb.shard(owner).db_lookup(mod->identity().uadd()).has_value());
  mod->stop();
}

// ================================================= churn property suite

TEST(NamingChurnProperty, ResolvesCurrentLocationOrRetriableError) {
  const std::uint64_t inversions_before = analysis::lock_inversions();
  ShardRig rig(harness::BackendKind::simnet, /*lease_ms=*/150);

  simnet::FaultPlan plan;
  plan.dup_prob = 0.05;
  plan.reorder_prob = 0.05;
  plan.reorder_window = 2ms;
  rig.tb.fabric().set_fault_plan(rig.tb.fabric().network_by_name("lan").value(),
                                 plan);

  constexpr int kWorkers = 5;
  const char* machines[] = {"m1", "m2", "m3"};
  std::vector<std::unique_ptr<EchoMod>> workers;
  std::vector<int> gen(kWorkers, 1);
  for (int i = 0; i < kWorkers; ++i) {
    workers.push_back(std::make_unique<EchoMod>(
        rig.tb, "w" + std::to_string(i), machines[i % 3], "g1"));
  }
  auto c1 = rig.tb.spawn_module("churn-c1", "m1", "lan").value();
  auto c2 = rig.tb.spawn_module("churn-c2", "m2", "lan").value();

  std::mt19937_64 rng(fabric_seed() * 7919 + 13);
  std::vector<std::unique_ptr<Node>> scratch;  // extra registered modules
  std::vector<bool> shard_killed(ShardRig::kShards, false);
  int kills = 0;

  auto sweep = [&](Node& client) {
    for (int i = 0; i < kWorkers; ++i) {
      const std::string name = "w" + std::to_string(i);
      const std::string want = "g" + std::to_string(gen[i]);
      const auto deadline = std::chrono::steady_clock::now() + 10s;
      while (true) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << name << ": no successful resolution before the deadline";
        auto addr = client.commod().locate(name);
        if (!addr.ok()) {
          // A failed resolution must always be retriable.
          ASSERT_TRUE(retriable(addr.code()))
              << name << ": " << addr.error().what();
          std::this_thread::sleep_for(20ms);
          continue;
        }
        auto reply = client.commod().request(addr.value(), to_bytes("who"), 2s);
        if (!reply.ok()) {
          ASSERT_TRUE(retriable(reply.code()))
              << name << ": " << reply.error().what();
          std::this_thread::sleep_for(20ms);
          continue;
        }
        // The answer reached *some* incarnation; it must be the current
        // one — a reply from a dead generation is the silent wrong answer
        // this suite exists to rule out.
        ASSERT_EQ(to_string(reply.value().payload), want) << name;
        break;
      }
    }
  };

  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    switch (rng() % 4) {
      case 0: {  // move a worker: kill it, re-register elsewhere
        const int i = static_cast<int>(rng() % kWorkers);
        workers[i]->stop();
        ++gen[i];
        workers[i] = std::make_unique<EchoMod>(
            rig.tb, "w" + std::to_string(i),
            machines[(i + gen[i]) % 3], "g" + std::to_string(gen[i]));
        break;
      }
      case 1: {  // kill a shard primary (at most two, distinct shards)
        const std::size_t s = rng() % ShardRig::kShards;
        if (kills < 2 && !shard_killed[s] && round > 2) {
          rig.tb.kill_shard_primary(s);
          shard_killed[s] = true;
          ++kills;
        }
        break;
      }
      case 2: {  // register a brand-new module (drives writes/promotions)
        auto extra = rig.tb.spawn_module(
            "x" + std::to_string(round), machines[round % 3], "lan");
        ASSERT_TRUE(extra.ok()) << extra.error().what();
        scratch.push_back(std::move(extra).value());
        break;
      }
      default:  // a quiet round: pure lookups
        break;
    }
    sweep(*c1);
    sweep(*c2);
  }

  // Any shard whose primary died must have completed failover by now (the
  // worker re-registrations above are the promoting writes).
  for (std::size_t s = 0; s < ShardRig::kShards; ++s) {
    if (shard_killed[s]) {
      EXPECT_EQ(rig.tb.shard_standby(s).role(), NsRole::primary)
          << "shard " << s;
    }
  }
  EXPECT_EQ(analysis::lock_inversions(), inversions_before);

  for (auto& n : scratch) n->stop();
  c1->stop();
  c2->stop();
}

// ===================================================== chaos regression

TEST(NamingChaos, PrimaryDeathMidLookupStormFailsOverCleanly) {
  const std::uint64_t inversions_before = analysis::lock_inversions();
  ShardRig rig(harness::BackendKind::simnet, /*lease_ms=*/100);

  simnet::FaultPlan plan;
  plan.dup_prob = 0.1;
  plan.reorder_prob = 0.1;
  plan.reorder_window = 2ms;
  plan.flap_period = 50ms;
  plan.flap_down = 5ms;
  rig.tb.fabric().set_fault_plan(rig.tb.fabric().network_by_name("lan").value(),
                                 plan);

  const std::string target_name =
      name_owned_by(1, ShardRig::kShards, "storm-target-");
  EchoMod target(rig.tb, target_name, "m2", "gen-1");
  auto c1 = rig.tb.spawn_module("storm-c1", "m1", "lan").value();
  auto c2 = rig.tb.spawn_module("storm-c2", "m3", "lan").value();

  const std::uint64_t failovers_before = metric("ns.failovers");
  const std::uint64_t invalidations_before = metric("nsp.cache_invalidations");
  std::vector<std::uint64_t> promotions_before;
  for (std::size_t s = 0; s < ShardRig::kShards; ++s) {
    promotions_before.push_back(rig.tb.shard_standby(s).stats().promotions);
  }
  const std::uint64_t client_invalidations_before =
      c1->nsp().stats().lease_invalidations +
      c2->nsp().stats().lease_invalidations +
      target.node->nsp().stats().lease_invalidations;

  // The storm: both clients resolve and query the target in a tight loop.
  // Leases are short (100ms), so the loop keeps crossing the server even
  // while the cache absorbs the bulk. Gtest assertions are not
  // thread-safe from worker threads, so failures are tallied and asserted
  // after the join.
  std::atomic<bool> stop{false};
  std::atomic<int> successes{0};
  std::atomic<int> retriable_errors{0};
  std::atomic<int> fatal_errors{0};
  std::atomic<int> wrong_answers{0};
  auto storm = [&](Node& client) {
    while (!stop.load()) {
      auto addr = client.commod().locate(target_name);
      if (!addr.ok()) {
        (retriable(addr.code()) ? retriable_errors : fatal_errors)++;
        continue;
      }
      auto reply = client.commod().request(addr.value(), to_bytes("?"), 2s);
      if (!reply.ok()) {
        (retriable(reply.code()) ? retriable_errors : fatal_errors)++;
        continue;
      }
      if (to_string(reply.value().payload) != "gen-1") {
        wrong_answers++;
      } else {
        successes++;
      }
    }
  };
  std::jthread t1([&] { storm(*c1); });
  std::jthread t2([&] { storm(*c2); });

  std::this_thread::sleep_for(300ms);
  rig.tb.kill_shard_primary(1);
  std::this_thread::sleep_for(200ms);

  // The promoting write, issued mid-storm with the faults still flowing.
  const std::string write_name =
      name_owned_by(1, ShardRig::kShards, "storm-write-");
  auto writer = rig.tb.spawn_module(write_name, "m1", "lan");
  ASSERT_TRUE(writer.ok()) << writer.error().what();

  std::this_thread::sleep_for(300ms);
  stop.store(true);
  t1.join();
  t2.join();

  // Failover completed, the storm survived it, nothing non-retriable or
  // wrong ever surfaced, and the lock validator stayed silent throughout.
  EXPECT_EQ(rig.tb.shard_standby(1).role(), NsRole::primary);
  EXPECT_GT(successes.load(), 0);
  EXPECT_EQ(fatal_errors.load(), 0);
  EXPECT_EQ(wrong_answers.load(), 0);
  EXPECT_EQ(analysis::lock_inversions(), inversions_before);

  // Metrics reconcile with what actually happened: the global failover
  // counter moved by exactly the promotions the standbys report, and the
  // global invalidation counter by exactly the leases the client caches
  // dropped.
  std::uint64_t promotions_delta = 0;
  for (std::size_t s = 0; s < ShardRig::kShards; ++s) {
    promotions_delta +=
        rig.tb.shard_standby(s).stats().promotions - promotions_before[s];
  }
  EXPECT_GE(promotions_delta, 1u);
  EXPECT_EQ(metric("ns.failovers") - failovers_before, promotions_delta);

  const std::uint64_t client_invalidations_delta =
      c1->nsp().stats().lease_invalidations +
      c2->nsp().stats().lease_invalidations +
      target.node->nsp().stats().lease_invalidations -
      client_invalidations_before;
  EXPECT_EQ(metric("nsp.cache_invalidations") - invalidations_before,
            client_invalidations_delta);

  writer.value()->stop();
  c1->stop();
  c2->stop();
}

}  // namespace
}  // namespace ntcs::core
