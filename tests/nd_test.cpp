// Unit tests for the ND-Layer (S5): STD-IF semantics, the channel-open
// exchange, retry-on-open, fragmentation, TAdd promotion, the phys cache.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/queue.h"
#include "core/nd/nd_layer.h"
#include "simnet/phys.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;
using simnet::IpcsKind;

/// A bare two-endpoint rig: no Nucleus above, just two ND-Layers. Both
/// sides are pumped continuously (as a Node would) with the upward events
/// collected into queues the tests pop from.
struct NdRig {
  simnet::Fabric fabric{1};
  simnet::NetworkId lan;
  simnet::MachineId vax, sun;
  std::shared_ptr<Identity> id_a, id_b;
  std::unique_ptr<NdLayer> a, b;
  BlockingQueue<NdEvent> events_a, events_b;
  std::jthread pump_a, pump_b;

  explicit NdRig(IpcsKind kind = IpcsKind::tcp, NdConfig cfg = {}) {
    lan = fabric.add_network("lan");
    vax = fabric.add_machine("vax1", Arch::vax780, {lan});
    sun = fabric.add_machine("sun1", Arch::sun3, {lan});
    id_a = std::make_shared<Identity>("mod-a", Arch::vax780, "lan");
    id_b = std::make_shared<Identity>("mod-b", Arch::sun3, "lan");
    a = std::make_unique<NdLayer>(fabric, vax, kind, "mod-a", id_a, cfg);
    b = std::make_unique<NdLayer>(fabric, sun, kind, "mod-b", id_b, cfg);
    EXPECT_TRUE(a->bind().ok());
    EXPECT_TRUE(b->bind().ok());
    pump_a = start_pump(*a, events_a);
    pump_b = start_pump(*b, events_b);
  }

  ~NdRig() {
    pump_a.request_stop();
    pump_b.request_stop();
  }

  static std::jthread start_pump(NdLayer& nd, BlockingQueue<NdEvent>& out) {
    return std::jthread([&nd, &out](std::stop_token st) {
      while (!st.stop_requested()) {
        auto ev = nd.pump(20ms);
        if (!ev) {
          if (ev.code() == Errc::timeout) continue;
          break;
        }
        if (ev.value()) (void)out.push(std::move(*ev.value()));
      }
    });
  }

  Result<NdEvent> next_a() { return events_a.pop_for(2s); }
  Result<NdEvent> next_b() { return events_b.pop_for(2s); }
};

TEST(NdLayer, BindPublishesPhys) {
  NdRig rig;
  EXPECT_TRUE(rig.a->local_phys().valid());
  EXPECT_EQ(rig.id_a->phys(), rig.a->local_phys());
  EXPECT_TRUE(rig.fabric.probe(rig.a->local_phys().blob));
}

TEST(NdLayer, OpenExchangesIdentity) {
  NdRig rig;
  rig.id_a->set_uadd(UAdd::permanent(1001));
  rig.id_b->set_uadd(UAdd::permanent(1002));

  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  // b's side: pump until the opened event, then check what b learned.
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::opened);
  auto peer_at_b = rig.b->peer(ev.value().lvc);
  ASSERT_TRUE(peer_at_b.has_value());
  EXPECT_EQ(peer_at_b->uadd, UAdd::permanent(1001));
  EXPECT_EQ(peer_at_b->arch, Arch::vax780);
  EXPECT_EQ(peer_at_b->phys, rig.a->local_phys());
  // a's side learned b's identity from the ack.
  auto peer_at_a = rig.a->peer(lvc.value());
  ASSERT_TRUE(peer_at_a.has_value());
  EXPECT_EQ(peer_at_a->uadd, UAdd::permanent(1002));
  EXPECT_EQ(peer_at_a->arch, Arch::sun3);
  // The open exchange populated both phys caches (§3.3).
  EXPECT_EQ(rig.a->cached_phys(UAdd::permanent(1002)), rig.b->local_phys());
  EXPECT_EQ(rig.b->cached_phys(UAdd::permanent(1001)), rig.a->local_phys());
}

TEST(NdLayer, TAddNotCached) {
  // TAdds "are of no use in locating objects" (§3.4): never cached.
  NdRig rig;
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  auto peer_at_b = rig.b->peer(ev.value().lvc);
  ASSERT_TRUE(peer_at_b.has_value());
  EXPECT_TRUE(peer_at_b->uadd.is_temporary());
  EXPECT_FALSE(rig.b->cached_phys(peer_at_b->uadd).has_value());
}

TEST(NdLayer, PromotePeerReplacesTAdd) {
  NdRig rig;
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  auto ev = rig.next_b();
  const LvcId at_b = ev.value().lvc;
  rig.b->promote_peer(at_b, UAdd::permanent(5000));
  auto peer = rig.b->peer(at_b);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->uadd, UAdd::permanent(5000));
  // Promotion also installs the phys cache entry.
  EXPECT_EQ(rig.b->cached_phys(UAdd::permanent(5000)), rig.a->local_phys());
  EXPECT_EQ(rig.b->stats().tadds_promoted, 1u);
  // Promoting again (or to a TAdd) is a no-op.
  rig.b->promote_peer(at_b, UAdd::permanent(6000));
  EXPECT_EQ(rig.b->peer(at_b)->uadd, UAdd::permanent(5000));
}

TEST(NdLayer, MessagesRoundTrip) {
  NdRig rig;
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  Bytes msg = to_bytes("the ip envelope");
  ASSERT_TRUE(rig.a->send(lvc.value(), msg).ok());
  // b: first event is `opened`, second is the message.
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev.value().kind, NdEvent::Kind::opened);
  ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::message);
  EXPECT_EQ(ev.value().message, msg);
}

TEST(NdLayer, FragmentationOverMbxMtu) {
  NdRig rig(IpcsKind::mbx);
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  Bytes big(3 * simnet::ipcs_mtu(IpcsKind::mbx) + 17);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(rig.a->send(lvc.value(), big).ok());
  (void)rig.next_b();  // opened
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::message);
  EXPECT_EQ(ev.value().message, big);
}

TEST(NdLayer, RetryOnOpenOutwaitsLateBinder) {
  // §2.2: the only ND-Layer recovery is "retry on open". The destination
  // binds a moment after the first attempt.
  // TCP ports are assigned at bind, so a late binder's address cannot be
  // known in advance; MBX pathnames can — the destination binds its
  // mailbox a moment after the opener's first attempt.
  NdRig rig;
  auto mbx_id = std::make_shared<Identity>("late-mbx", Arch::sun3, "lan");
  NdConfig cfg;
  cfg.open_attempts = 40;
  cfg.open_backoff = BackoffPolicy{2ms, 8ms, 2.0, 0.5};
  NdLayer mbx_opener(rig.fabric, rig.vax, IpcsKind::mbx, "op-mbx", rig.id_a,
                     cfg);
  ASSERT_TRUE(mbx_opener.bind().ok());
  BlockingQueue<NdEvent> scratch;
  auto pump_m = NdRig::start_pump(mbx_opener, scratch);

  NdLayer mbx_late(rig.fabric, rig.sun, IpcsKind::mbx, "late-mbx", mbx_id);
  std::jthread late_pump;
  std::jthread binder([&] {
    std::this_thread::sleep_for(30ms);
    ASSERT_TRUE(mbx_late.bind().ok());
    late_pump = std::jthread([&mbx_late](std::stop_token st) {
      while (!st.stop_requested()) (void)mbx_late.pump(20ms);
    });
  });
  auto lvc =
      mbx_opener.open(PhysAddr{simnet::format_mbx_addr("sun1", "late-mbx")});
  EXPECT_TRUE(lvc.ok());
  EXPECT_GT(mbx_opener.stats().open_retries, 0u);
  binder.join();
  late_pump.request_stop();
}

TEST(NdLayer, OpenToNothingFailsAfterRetries) {
  NdConfig cfg;
  cfg.open_attempts = 3;
  cfg.open_backoff = BackoffPolicy{1ms, 2ms, 2.0, 0.5};
  NdRig rig(IpcsKind::tcp, cfg);
  auto r = rig.a->open(PhysAddr{"tcp:sun1:9"});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rig.a->stats().open_retries, 2u);
}

TEST(NdLayer, MalformedAddressFailsFast) {
  NdRig rig;
  auto r = rig.a->open(PhysAddr{"total garbage"});
  EXPECT_EQ(r.code(), Errc::bad_argument);
  EXPECT_EQ(rig.a->stats().open_retries, 0u);  // no pointless retries
}

TEST(NdLayer, PeerCloseSurfacesAsEvent) {
  NdRig rig;
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  auto ev = rig.next_b();  // opened
  const LvcId at_b = ev.value().lvc;
  ASSERT_TRUE(rig.a->close(lvc.value()).ok());
  ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::closed);
  EXPECT_EQ(ev.value().lvc, at_b);
  // Sending on the dead LVC is an address fault; "notification is simply
  // passed upward" — no recovery here.
  EXPECT_EQ(rig.b->send(at_b, to_bytes("x")).code(), Errc::address_fault);
}

TEST(NdLayer, SendOnUnknownLvcFaults) {
  NdRig rig;
  EXPECT_EQ(rig.a->send(424242, to_bytes("x")).code(), Errc::address_fault);
}

TEST(NdLayer, PhysCacheBasics) {
  NdRig rig;
  rig.a->cache_phys(UAdd::permanent(7), PhysAddr{"tcp:x:1"});
  EXPECT_EQ(rig.a->cached_phys(UAdd::permanent(7))->blob, "tcp:x:1");
  rig.a->uncache_phys(UAdd::permanent(7));
  EXPECT_FALSE(rig.a->cached_phys(UAdd::permanent(7)).has_value());
  // Temporary addresses are rejected by the cache.
  rig.a->cache_phys(UAdd::temporary(7), PhysAddr{"tcp:y:2"});
  EXPECT_FALSE(rig.a->cached_phys(UAdd::temporary(7)).has_value());
}

TEST(NdLayer, ShutdownStopsPump) {
  NdRig rig;
  rig.a->shutdown();
  auto ev = rig.a->pump(50ms);
  EXPECT_EQ(ev.code(), Errc::closed);
}

TEST(NdLayer, FailedOpenLeaksNoChannels_AckTimeout) {
  // A peer that accepts the IPCS connection but never answers the NdOpen:
  // every attempt must tear its channel down, not strand it in the fabric.
  NdConfig cfg;
  cfg.open_attempts = 2;
  cfg.open_backoff = BackoffPolicy{1ms, 2ms, 2.0, 0.5};
  cfg.open_ack_timeout = 30ms;
  NdRig rig(IpcsKind::tcp, cfg);
  auto mute = rig.fabric.bind(rig.sun, IpcsKind::tcp, "mute").value();
  auto r = rig.a->open(PhysAddr{mute->phys()});
  EXPECT_EQ(r.code(), Errc::timeout);
  EXPECT_EQ(rig.fabric.channel_count(), 0u);
}

TEST(NdLayer, FailedOpenLeaksNoChannels_KilledDuringOpen) {
  // The fabric kills the channel mid-handshake (the nacked-open path: the
  // pump fails the waiter with an address fault). Regression for the leak
  // where the dead-but-present channel was never closed.
  NdConfig cfg;
  cfg.open_attempts = 2;
  cfg.open_backoff = BackoffPolicy{1ms, 2ms, 2.0, 0.5};
  NdRig rig(IpcsKind::tcp, cfg);
  auto trap = rig.fabric.bind(rig.sun, IpcsKind::tcp, "trap").value();
  std::jthread killer([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto d = trap->recv_for(20ms);
      if (d.ok() && d.value().kind == simnet::DeliveryKind::opened) {
        (void)rig.fabric.kill_channel(d.value().chan);
      }
    }
  });
  auto r = rig.a->open(PhysAddr{trap->phys()});
  EXPECT_EQ(r.code(), Errc::address_fault);
  killer.request_stop();
  killer.join();
  EXPECT_EQ(rig.fabric.channel_count(), 0u);
}

TEST(NdLayer, FailedOpenLeaksNoChannels_PartitionChurn) {
  // Partition flickering during a batch of opens exercises every failure
  // point — connect refused, the introduction send failing after the
  // channel exists (the classic leak), ack lost. However each open ends,
  // channel accounting must balance.
  NdConfig cfg;
  cfg.open_attempts = 1;
  cfg.open_ack_timeout = 30ms;
  NdRig rig(IpcsKind::tcp, cfg);
  std::atomic<bool> stop{false};
  std::jthread toggler([&] {
    bool part = false;
    while (!stop.load()) {
      part = !part;
      rig.fabric.set_partitioned(rig.lan, part);
      std::this_thread::sleep_for(200us);
    }
  });
  std::vector<LvcId> opened;
  for (int i = 0; i < 20; ++i) {
    auto r = rig.a->open(rig.b->local_phys());
    if (r.ok()) opened.push_back(r.value());
  }
  stop.store(true);
  toggler.join();
  rig.fabric.set_partitioned(rig.lan, false);
  for (LvcId lvc : opened) EXPECT_TRUE(rig.a->close(lvc).ok());
  EXPECT_EQ(rig.fabric.channel_count(), 0u);
}

TEST(NdLayer, DuplicatedFramesReachApplicationOnce) {
  // A duplicating network: the ND frame sequence number suppresses the
  // copies, so the layer above sees each message exactly once.
  NdConfig cfg;
  NdRig rig(IpcsKind::tcp, cfg);
  simnet::FaultPlan plan;
  plan.dup_prob = 1.0;
  rig.fabric.set_fault_plan(rig.lan, plan);
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  (void)rig.next_b();  // opened
  constexpr int kMsgs = 10;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(rig.a->send(lvc.value(), to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < kMsgs; ++i) {
    auto ev = rig.next_b();
    ASSERT_TRUE(ev.ok());
    ASSERT_EQ(ev.value().kind, NdEvent::Kind::message);
    EXPECT_EQ(ev.value().message, to_bytes(std::to_string(i)));
  }
  // Nothing further arrives: every duplicate was eaten below the STD-IF.
  EXPECT_EQ(rig.events_b.pop_for(50ms).code(), Errc::timeout);
  EXPECT_GT(rig.b->stats().frames_deduped, 0u);
}

TEST(NdLayer, StatsCountTraffic) {
  NdRig rig;
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  ASSERT_TRUE(rig.a->send(lvc.value(), to_bytes("m")).ok());
  (void)rig.next_b();
  (void)rig.next_b();
  EXPECT_EQ(rig.a->stats().opens_initiated, 1u);
  EXPECT_EQ(rig.a->stats().messages_sent, 1u);
  EXPECT_EQ(rig.b->stats().opens_accepted, 1u);
  EXPECT_EQ(rig.b->stats().messages_received, 1u);
}

}  // namespace
}  // namespace ntcs::core
