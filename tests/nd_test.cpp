// Unit tests for the ND-Layer (S5): STD-IF semantics, the channel-open
// exchange, retry-on-open, fragmentation, TAdd promotion, the phys cache.
//
// The contract cases (NdConformance) are value-parameterized over the
// substrate: every assertion must hold over the simulated fabric and over
// real loopback TCP sockets, because the STD-IF is the paper's portability
// boundary — nothing above the ND-Layer may care which one is underneath.
// Fault-injection and fabric-accounting cases (NdSimnet) stay simnet-only;
// their real-socket counterparts live in realnet_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "backend_harness.h"
#include "common/queue.h"
#include "core/nd/nd_layer.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;
using harness::BackendKind;
using simnet::IpcsKind;

/// A bare two-endpoint rig: no Nucleus above, just two ND-Layers over a
/// BackendPair. Both sides are pumped continuously (as a Node would) with
/// the upward events collected into queues the tests pop from.
struct NdRig {
  harness::BackendPair pair;
  std::shared_ptr<Identity> id_a, id_b;
  std::unique_ptr<NdLayer> a, b;
  BlockingQueue<NdEvent> events_a, events_b;
  std::jthread pump_a, pump_b;

  explicit NdRig(BackendKind kind, NdConfig cfg = {},
                 IpcsKind ipcs = IpcsKind::tcp)
      : pair(kind, ipcs) {
    id_a = std::make_shared<Identity>("mod-a", pair.a->arch(), "lan");
    id_b = std::make_shared<Identity>("mod-b", pair.b->arch(), "lan");
    a = std::make_unique<NdLayer>(*pair.a, "mod-a", id_a, cfg);
    b = std::make_unique<NdLayer>(*pair.b, "mod-b", id_b, cfg);
    EXPECT_TRUE(a->bind().ok());
    EXPECT_TRUE(b->bind().ok());
    pump_a = start_pump(*a, events_a);
    pump_b = start_pump(*b, events_b);
  }

  ~NdRig() {
    pump_a.request_stop();
    pump_b.request_stop();
  }

  static std::jthread start_pump(NdLayer& nd, BlockingQueue<NdEvent>& out) {
    return std::jthread([&nd, &out](std::stop_token st) {
      while (!st.stop_requested()) {
        auto ev = nd.pump(20ms);
        if (!ev) {
          if (ev.code() == Errc::timeout) continue;
          break;
        }
        if (ev.value()) (void)out.push(std::move(*ev.value()));
      }
    });
  }

  Result<NdEvent> next_a() { return events_a.pop_for(2s); }
  Result<NdEvent> next_b() { return events_b.pop_for(2s); }
};

class NdConformance : public ::testing::TestWithParam<BackendKind> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, NdConformance,
    ::testing::Values(BackendKind::simnet, BackendKind::realnet),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return harness::backend_param_name(info.param);
    });

TEST_P(NdConformance, BindPublishesPhys) {
  NdRig rig(GetParam());
  EXPECT_TRUE(rig.a->local_phys().valid());
  EXPECT_EQ(rig.id_a->phys(), rig.a->local_phys());
  EXPECT_TRUE(rig.pair.a->probe(rig.a->local_phys().blob));
}

TEST_P(NdConformance, OpenExchangesIdentity) {
  NdRig rig(GetParam());
  rig.id_a->set_uadd(UAdd::permanent(1001));
  rig.id_b->set_uadd(UAdd::permanent(1002));

  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  // b's side: pump until the opened event, then check what b learned.
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::opened);
  auto peer_at_b = rig.b->peer(ev.value().lvc);
  ASSERT_TRUE(peer_at_b.has_value());
  EXPECT_EQ(peer_at_b->uadd, UAdd::permanent(1001));
  EXPECT_EQ(peer_at_b->arch, Arch::vax780);
  EXPECT_EQ(peer_at_b->phys, rig.a->local_phys());
  // a's side learned b's identity from the ack.
  auto peer_at_a = rig.a->peer(lvc.value());
  ASSERT_TRUE(peer_at_a.has_value());
  EXPECT_EQ(peer_at_a->uadd, UAdd::permanent(1002));
  EXPECT_EQ(peer_at_a->arch, Arch::sun3);
  // The open exchange populated both phys caches (§3.3).
  EXPECT_EQ(rig.a->cached_phys(UAdd::permanent(1002)), rig.b->local_phys());
  EXPECT_EQ(rig.b->cached_phys(UAdd::permanent(1001)), rig.a->local_phys());
}

TEST_P(NdConformance, TAddNotCached) {
  // TAdds "are of no use in locating objects" (§3.4): never cached.
  NdRig rig(GetParam());
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  auto peer_at_b = rig.b->peer(ev.value().lvc);
  ASSERT_TRUE(peer_at_b.has_value());
  EXPECT_TRUE(peer_at_b->uadd.is_temporary());
  EXPECT_FALSE(rig.b->cached_phys(peer_at_b->uadd).has_value());
}

TEST_P(NdConformance, PromotePeerReplacesTAdd) {
  NdRig rig(GetParam());
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  auto ev = rig.next_b();
  const LvcId at_b = ev.value().lvc;
  rig.b->promote_peer(at_b, UAdd::permanent(5000));
  auto peer = rig.b->peer(at_b);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->uadd, UAdd::permanent(5000));
  // Promotion also installs the phys cache entry.
  EXPECT_EQ(rig.b->cached_phys(UAdd::permanent(5000)), rig.a->local_phys());
  EXPECT_EQ(rig.b->stats().tadds_promoted, 1u);
  // Promoting again (or to a TAdd) is a no-op.
  rig.b->promote_peer(at_b, UAdd::permanent(6000));
  EXPECT_EQ(rig.b->peer(at_b)->uadd, UAdd::permanent(5000));
}

TEST_P(NdConformance, MessagesRoundTrip) {
  NdRig rig(GetParam());
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  Bytes msg = to_bytes("the ip envelope");
  ASSERT_TRUE(rig.a->send(lvc.value(), msg).ok());
  // b: first event is `opened`, second is the message.
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev.value().kind, NdEvent::Kind::opened);
  ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::message);
  EXPECT_EQ(ev.value().message, msg);
}

TEST_P(NdConformance, FragmentationOverTcpMtu) {
  // Both TCP IPCSs (simulated and real) share the 16 KiB MTU, so the same
  // message produces the same fragment train on either substrate.
  NdRig rig(GetParam());
  ASSERT_EQ(realnet::tcp_mtu(), simnet::ipcs_mtu(IpcsKind::tcp));
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  Bytes big(3 * realnet::tcp_mtu() + 17);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(rig.a->send(lvc.value(), big).ok());
  (void)rig.next_b();  // opened
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::message);
  EXPECT_EQ(ev.value().message, big);
}

TEST_P(NdConformance, RetryOnOpenOutwaitsLateBinder) {
  // §2.2: the only ND-Layer recovery is "retry on open". The destination
  // binds a moment after the first attempt, on an address the opener can
  // know in advance: an MBX pathname over simnet, a well-known port
  // (TcpConfig::fixed_ports — the multi-process bootstrap mechanism)
  // over realnet.
  NdRig rig(GetParam());
  auto lb = rig.pair.late_binder();
  NdConfig cfg;
  cfg.open_attempts = 40;
  cfg.open_backoff = BackoffPolicy{2ms, 8ms, 2.0, 0.5};
  NdLayer opener(*lb.opener, "op-late", rig.id_a, cfg);
  ASSERT_TRUE(opener.bind().ok());
  BlockingQueue<NdEvent> scratch;
  auto pump_o = NdRig::start_pump(opener, scratch);

  auto late_id =
      std::make_shared<Identity>(lb.binder_name, lb.binder->arch(), "lan");
  NdLayer late(*lb.binder, lb.binder_name, late_id);
  std::jthread late_pump;
  std::jthread binder([&] {
    std::this_thread::sleep_for(30ms);
    ASSERT_TRUE(late.bind().ok());
    late_pump = std::jthread([&late](std::stop_token st) {
      while (!st.stop_requested()) (void)late.pump(20ms);
    });
  });
  auto lvc = opener.open(PhysAddr{lb.known_phys});
  EXPECT_TRUE(lvc.ok());
  EXPECT_GT(opener.stats().open_retries, 0u);
  binder.join();
  late_pump.request_stop();
  pump_o.request_stop();
}

TEST_P(NdConformance, OpenToNothingFailsAfterRetries) {
  NdConfig cfg;
  cfg.open_attempts = 3;
  cfg.open_backoff = BackoffPolicy{1ms, 2ms, 2.0, 0.5};
  NdRig rig(GetParam(), cfg);
  auto r = rig.a->open(PhysAddr{rig.pair.unreachable_phys()});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rig.a->stats().open_retries, 2u);
}

TEST_P(NdConformance, MalformedAddressFailsFast) {
  NdRig rig(GetParam());
  auto r = rig.a->open(PhysAddr{"total garbage"});
  EXPECT_EQ(r.code(), Errc::bad_argument);
  EXPECT_EQ(rig.a->stats().open_retries, 0u);  // no pointless retries
}

TEST_P(NdConformance, PeerCloseSurfacesAsEvent) {
  NdRig rig(GetParam());
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  auto ev = rig.next_b();  // opened
  const LvcId at_b = ev.value().lvc;
  ASSERT_TRUE(rig.a->close(lvc.value()).ok());
  ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::closed);
  EXPECT_EQ(ev.value().lvc, at_b);
  // Sending on the dead LVC is an address fault; "notification is simply
  // passed upward" — no recovery here.
  EXPECT_EQ(rig.b->send(at_b, to_bytes("x")).code(), Errc::address_fault);
}

TEST_P(NdConformance, SendOnUnknownLvcFaults) {
  NdRig rig(GetParam());
  EXPECT_EQ(rig.a->send(424242, to_bytes("x")).code(), Errc::address_fault);
}

TEST_P(NdConformance, PhysCacheBasics) {
  NdRig rig(GetParam());
  rig.a->cache_phys(UAdd::permanent(7), PhysAddr{"tcp:x:1"});
  EXPECT_EQ(rig.a->cached_phys(UAdd::permanent(7))->blob, "tcp:x:1");
  rig.a->uncache_phys(UAdd::permanent(7));
  EXPECT_FALSE(rig.a->cached_phys(UAdd::permanent(7)).has_value());
  // Temporary addresses are rejected by the cache.
  rig.a->cache_phys(UAdd::temporary(7), PhysAddr{"tcp:y:2"});
  EXPECT_FALSE(rig.a->cached_phys(UAdd::temporary(7)).has_value());
}

TEST_P(NdConformance, ShutdownStopsPump) {
  NdRig rig(GetParam());
  rig.a->shutdown();
  auto ev = rig.a->pump(50ms);
  EXPECT_EQ(ev.code(), Errc::closed);
}

TEST_P(NdConformance, StatsCountTraffic) {
  NdRig rig(GetParam());
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  ASSERT_TRUE(rig.a->send(lvc.value(), to_bytes("m")).ok());
  (void)rig.next_b();
  (void)rig.next_b();
  EXPECT_EQ(rig.a->stats().opens_initiated, 1u);
  EXPECT_EQ(rig.a->stats().messages_sent, 1u);
  EXPECT_EQ(rig.b->stats().opens_accepted, 1u);
  EXPECT_EQ(rig.b->stats().messages_received, 1u);
}

// ---- simnet-only cases: fault injection and fabric accounting -------------

TEST(NdSimnet, FragmentationOverMbxMtu) {
  NdRig rig(BackendKind::simnet, {}, IpcsKind::mbx);
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  Bytes big(3 * simnet::ipcs_mtu(IpcsKind::mbx) + 17);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(rig.a->send(lvc.value(), big).ok());
  (void)rig.next_b();  // opened
  auto ev = rig.next_b();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value().kind, NdEvent::Kind::message);
  EXPECT_EQ(ev.value().message, big);
}

TEST(NdSimnet, FailedOpenLeaksNoChannels_AckTimeout) {
  // A peer that accepts the IPCS connection but never answers the NdOpen:
  // every attempt must tear its channel down, not strand it in the fabric.
  NdConfig cfg;
  cfg.open_attempts = 2;
  cfg.open_backoff = BackoffPolicy{1ms, 2ms, 2.0, 0.5};
  cfg.open_ack_timeout = 30ms;
  NdRig rig(BackendKind::simnet, cfg);
  auto& fabric = *rig.pair.fabric;
  auto mute = fabric.bind(rig.pair.m_b, IpcsKind::tcp, "mute").value();
  auto r = rig.a->open(PhysAddr{mute->phys()});
  EXPECT_EQ(r.code(), Errc::timeout);
  EXPECT_EQ(fabric.channel_count(), 0u);
}

TEST(NdSimnet, FailedOpenLeaksNoChannels_KilledDuringOpen) {
  // The fabric kills the channel mid-handshake (the nacked-open path: the
  // pump fails the waiter with an address fault). Regression for the leak
  // where the dead-but-present channel was never closed.
  NdConfig cfg;
  cfg.open_attempts = 2;
  cfg.open_backoff = BackoffPolicy{1ms, 2ms, 2.0, 0.5};
  NdRig rig(BackendKind::simnet, cfg);
  auto& fabric = *rig.pair.fabric;
  auto trap = fabric.bind(rig.pair.m_b, IpcsKind::tcp, "trap").value();
  std::jthread killer([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto d = trap->recv_for(20ms);
      if (d.ok() && d.value().kind == simnet::DeliveryKind::opened) {
        (void)fabric.kill_channel(d.value().chan);
      }
    }
  });
  auto r = rig.a->open(PhysAddr{trap->phys()});
  EXPECT_EQ(r.code(), Errc::address_fault);
  killer.request_stop();
  killer.join();
  EXPECT_EQ(fabric.channel_count(), 0u);
}

TEST(NdSimnet, FailedOpenLeaksNoChannels_PartitionChurn) {
  // Partition flickering during a batch of opens exercises every failure
  // point — connect refused, the introduction send failing after the
  // channel exists (the classic leak), ack lost. However each open ends,
  // channel accounting must balance.
  NdConfig cfg;
  cfg.open_attempts = 1;
  cfg.open_ack_timeout = 30ms;
  NdRig rig(BackendKind::simnet, cfg);
  auto& fabric = *rig.pair.fabric;
  std::atomic<bool> stop{false};
  std::jthread toggler([&] {
    bool part = false;
    while (!stop.load()) {
      part = !part;
      fabric.set_partitioned(rig.pair.lan, part);
      std::this_thread::sleep_for(200us);
    }
  });
  std::vector<LvcId> opened;
  for (int i = 0; i < 20; ++i) {
    auto r = rig.a->open(rig.b->local_phys());
    if (r.ok()) opened.push_back(r.value());
  }
  stop.store(true);
  toggler.join();
  fabric.set_partitioned(rig.pair.lan, false);
  for (LvcId lvc : opened) EXPECT_TRUE(rig.a->close(lvc).ok());
  EXPECT_EQ(fabric.channel_count(), 0u);
}

TEST(NdSimnet, DuplicatedFramesReachApplicationOnce) {
  // A duplicating network: the ND frame sequence number suppresses the
  // copies, so the layer above sees each message exactly once.
  NdRig rig(BackendKind::simnet);
  auto& fabric = *rig.pair.fabric;
  simnet::FaultPlan plan;
  plan.dup_prob = 1.0;
  fabric.set_fault_plan(rig.pair.lan, plan);
  auto lvc = rig.a->open(rig.b->local_phys());
  ASSERT_TRUE(lvc.ok());
  (void)rig.next_b();  // opened
  constexpr int kMsgs = 10;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(rig.a->send(lvc.value(), to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < kMsgs; ++i) {
    auto ev = rig.next_b();
    ASSERT_TRUE(ev.ok());
    ASSERT_EQ(ev.value().kind, NdEvent::Kind::message);
    EXPECT_EQ(ev.value().message, to_bytes(std::to_string(i)));
  }
  // Nothing further arrives: every duplicate was eaten below the STD-IF.
  EXPECT_EQ(rig.events_b.pop_for(50ms).code(), Errc::timeout);
  EXPECT_GT(rig.b->stats().frames_deduped, 0u);
}

}  // namespace
}  // namespace ntcs::core
