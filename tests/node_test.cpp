// Tests for Node assembly/lifecycle (S10 glue) and Testbed misuse paths.
#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

TEST(Node, StartIsIdempotent) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto node = tb.make_node("n", "m1", "lan").value();
  EXPECT_TRUE(node->running());
  EXPECT_TRUE(node->start().ok());  // second start: no-op success
  node->stop();
  EXPECT_FALSE(node->running());
  node->stop();  // second stop: no-op
}

TEST(Node, IdentityStartsTemporary) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto node = tb.make_node("fresh", "m1", "lan").value();
  EXPECT_TRUE(node->identity().uadd().is_temporary());
  EXPECT_EQ(node->identity().name(), "fresh");
  EXPECT_EQ(node->identity().arch(), Arch::sun3);
  EXPECT_EQ(node->identity().net(), "lan");
  EXPECT_TRUE(node->phys().valid());
  auto uadd = node->commod().register_self();
  ASSERT_TRUE(uadd.ok());
  EXPECT_FALSE(node->identity().uadd().is_temporary());
  node->stop();
}

TEST(Node, DistinctTAddsAcrossModules) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto n1 = tb.make_node("n1", "m1", "lan").value();
  auto n2 = tb.make_node("n2", "m1", "lan").value();
  // In-process TAdds are distinct (a convenience; the protocol would
  // tolerate collisions, which is the whole point of §3.4).
  EXPECT_NE(n1->identity().uadd(), n2->identity().uadd());
  n1->stop();
  n2->stop();
}

TEST(Node, LateWellKnownInstallEnablesNaming) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  // Build a node with an EMPTY well-known table, then install late.
  NodeConfig cfg;
  cfg.name = "late";
  cfg.backend = tb.backend("m1");
  cfg.net = "lan";
  Node node(std::move(cfg));
  ASSERT_TRUE(node.start().ok());
  EXPECT_FALSE(node.commod().register_self().ok());  // cannot find the NS
  node.install_well_known(tb.well_known());
  EXPECT_TRUE(node.commod().register_self().ok());
  node.stop();
}

TEST(Node, UadToStringFormats) {
  EXPECT_EQ(UAdd::permanent(17).to_string(), "U#17");
  EXPECT_EQ(UAdd::temporary(4).to_string(), "T#4");
  EXPECT_EQ(UAdd{}.to_string(), "U#invalid");
}

TEST(Testbed, UnknownMachineRejected) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto bad = tb.make_node("x", "marsrover", "lan");
  EXPECT_EQ(bad.code(), Errc::bad_argument);
}

TEST(Testbed, FinalizeWithoutNameServerRejected) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  EXPECT_EQ(tb.finalize().code(), Errc::bad_argument);
}

TEST(Testbed, NetAndMachineAreIdempotent) {
  Testbed tb;
  auto n1 = tb.net("lan");
  auto n2 = tb.net("lan");
  EXPECT_EQ(n1, n2);
  auto m1 = tb.machine("m", Arch::sun2, {"lan"});
  auto m2 = tb.machine("m", Arch::sun3, {"lan"});  // second arch ignored
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(tb.fabric().machine_arch(m1), Arch::sun2);
}

TEST(Testbed, ReplicaBeforePrimaryRejected) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  EXPECT_EQ(tb.add_name_server_replica("m1", "lan").code(),
            Errc::bad_argument);
}

}  // namespace
}  // namespace ntcs::core
