// Tests for the naming service (S9): NSP protocol codecs, Name Server
// database semantics (registration, generations, forwarding determination,
// liveness probes, the gateway registry), and the recursive access path.
#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

// ---------------------------------------------------------------- codecs

TEST(NspProtocol, RegisterRoundTrip) {
  nsp::RegisterRequest req;
  req.name = "mod";
  req.attrs = {{"role", "search"}, {"gen", "2"}};
  req.phys = "tcp:m:5001";
  req.net = "lan-a";
  req.arch = 2;
  req.requested_uadd = 0;
  req.is_gateway = true;
  req.gw_nets = {"lan-a", "lan-b"};
  req.gw_phys = {"tcp:m:5001", "tcp:m:5002"};
  auto back = nsp::decode_request(nsp::encode_register(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().op, nsp::NsOp::register_module);
  EXPECT_EQ(back.value().reg.name, "mod");
  EXPECT_EQ(back.value().reg.attrs.at("role"), "search");
  EXPECT_EQ(back.value().reg.phys, "tcp:m:5001");
  EXPECT_TRUE(back.value().reg.is_gateway);
  ASSERT_EQ(back.value().reg.gw_nets.size(), 2u);
  EXPECT_EQ(back.value().reg.gw_phys[1], "tcp:m:5002");
}

TEST(NspProtocol, AllOpsDecode) {
  EXPECT_EQ(nsp::decode_request(nsp::encode_lookup("x")).value().op,
            nsp::NsOp::lookup);
  EXPECT_EQ(nsp::decode_request(nsp::encode_lookup_attrs({{"a", "b"}}))
                .value()
                .op,
            nsp::NsOp::lookup_attrs);
  EXPECT_EQ(
      nsp::decode_request(nsp::encode_resolve(UAdd::permanent(5))).value().op,
      nsp::NsOp::resolve);
  EXPECT_EQ(
      nsp::decode_request(nsp::encode_forward(UAdd::permanent(5))).value().op,
      nsp::NsOp::forward);
  EXPECT_EQ(nsp::decode_request(nsp::encode_gateways()).value().op,
            nsp::NsOp::gateways);
  EXPECT_EQ(nsp::decode_request(nsp::encode_deregister(UAdd::permanent(5)))
                .value()
                .op,
            nsp::NsOp::deregister);
  EXPECT_EQ(nsp::decode_request(nsp::encode_ping()).value().op,
            nsp::NsOp::ping);
}

TEST(NspProtocol, ErrorEnvelopePropagates) {
  auto body = nsp::encode_error_response(Errc::not_found, "gone");
  auto uadd = nsp::decode_uadd_response(body);
  EXPECT_EQ(uadd.code(), Errc::not_found);
  EXPECT_EQ(uadd.error().what(), "gone");
  EXPECT_EQ(nsp::decode_ok_response(body).code(), Errc::not_found);
}

TEST(NspProtocol, GatewaysResponseRoundTrip) {
  std::vector<GatewayRecord> gws(2);
  gws[0].uadd = UAdd::permanent(2);
  gws[0].name = "gw-a";
  gws[0].nets = {"n1", "n2"};
  gws[0].phys = {PhysAddr{"p1"}, PhysAddr{"p2"}};
  gws[1].uadd = UAdd::permanent(3);
  gws[1].name = "gw-b";
  auto back = nsp::decode_gateways_response(nsp::encode_gateways_response(gws));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[0].uadd, UAdd::permanent(2));
  EXPECT_EQ(back.value()[0].nets[1], "n2");
  EXPECT_EQ(back.value()[0].phys[1].blob, "p2");
  EXPECT_EQ(back.value()[1].name, "gw-b");
}

// ---------------------------------------------------------------- server

struct Rig {
  Testbed tb;
  std::unique_ptr<Node> mod;

  Rig() {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    mod = tb.spawn_module("mod", "m2", "lan").value();
  }
  ~Rig() {
    if (mod) mod->stop();
  }
};

TEST(NameServerDb, SelfEntryExists) {
  Rig rig;
  auto self = rig.tb.name_server().db_lookup(kNameServerUAdd);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->name, "name-server");
  // And it is locatable by name through the service itself.
  auto located = rig.mod->commod().locate("name-server");
  ASSERT_TRUE(located.ok());
  EXPECT_EQ(located.value(), kNameServerUAdd);
}

TEST(NameServerDb, ResolveReturnsRegistrationData) {
  Rig rig;
  auto info = rig.mod->nsp().resolve_info(rig.mod->identity().uadd());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().name, "mod");
  EXPECT_EQ(info.value().net, "lan");
  EXPECT_EQ(info.value().arch, Arch::sun3);
  EXPECT_EQ(info.value().phys, rig.mod->phys());
}

TEST(NameServerDb, ResolveUnknownFails) {
  Rig rig;
  EXPECT_EQ(rig.mod->nsp().resolve_info(UAdd::permanent(77777)).code(),
            Errc::not_found);
}

TEST(NameServerDb, LookupPrefersNewestGeneration) {
  Rig rig;
  auto gen2 = rig.tb.spawn_module("mod", "m1", "lan").value();
  auto located = gen2->commod().locate("mod");
  ASSERT_TRUE(located.ok());
  EXPECT_EQ(located.value(), gen2->identity().uadd());
  gen2->stop();
}

TEST(NameServerDb, ForwardStillAliveWhenModuleLives) {
  Rig rig;
  auto fwd = rig.mod->nsp().forward(rig.mod->identity().uadd());
  EXPECT_EQ(fwd.code(), Errc::still_alive);
  EXPECT_GE(rig.tb.name_server().stats().liveness_probes, 1u);
}

TEST(NameServerDb, ForwardFindsSuccessorByName) {
  Rig rig;
  const UAdd old = rig.mod->identity().uadd();
  rig.mod->stop();
  auto gen2 = rig.tb.spawn_module("mod", "m1", "lan").value();
  auto fwd = gen2->nsp().forward(old);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd.value(), gen2->identity().uadd());
  EXPECT_GE(rig.tb.name_server().stats().forward_hits, 1u);
  gen2->stop();
  rig.mod.reset();
}

TEST(NameServerDb, ForwardFindsSuccessorByRoleAttr) {
  // §3.5: "With our new attribute-based naming, this is more involved."
  // A differently named module announcing the same role is accepted once
  // no same-name successor exists.
  Rig rig;
  auto worker =
      rig.tb.spawn_module("worker-1", "m2", "lan", {{"role", "crunch"}})
          .value();
  const UAdd old = worker->identity().uadd();
  worker->stop();
  auto successor =
      rig.tb.spawn_module("worker-2", "m1", "lan", {{"role", "crunch"}})
          .value();
  auto fwd = rig.mod->nsp().forward(old);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd.value(), successor->identity().uadd());
  successor->stop();
}

TEST(NameServerDb, ForwardWithoutSuccessorNotFound) {
  Rig rig;
  auto loner = rig.tb.spawn_module("loner", "m2", "lan").value();
  const UAdd old = loner->identity().uadd();
  loner->stop();
  EXPECT_EQ(rig.mod->nsp().forward(old).code(), Errc::not_found);
}

TEST(NameServerDb, ForwardNeverReturnsOlderGeneration) {
  // A successor must be NEWER than the dead module — a stale generation
  // must not resurrect.
  Rig rig;
  const UAdd gen1 = rig.mod->identity().uadd();
  rig.mod->stop();
  auto gen2 = rig.tb.spawn_module("mod", "m1", "lan").value();
  const UAdd gen2_addr = gen2->identity().uadd();
  gen2->stop();
  // gen2 dead too; forwarding gen2 must not land on gen1.
  auto probe_node = rig.tb.spawn_module("probe", "m1", "lan").value();
  EXPECT_EQ(probe_node->nsp().forward(gen2_addr).code(), Errc::not_found);
  EXPECT_EQ(probe_node->nsp().forward(gen1).value_or(UAdd{}),
            UAdd{});  // also nothing newer alive
  probe_node->stop();
  rig.mod.reset();
}

TEST(NameServerDb, DeregisterRemovesFromLookup) {
  Rig rig;
  ASSERT_TRUE(rig.mod->commod().deregister().ok());
  EXPECT_EQ(rig.mod->commod().locate("mod").code(), Errc::not_found);
  EXPECT_EQ(rig.mod->nsp().resolve_info(rig.mod->identity().uadd()).code(),
            Errc::not_found);
}

TEST(NameServerDb, WellKnownUAddConflictRejected) {
  Rig rig;
  // Requesting a well-known UAdd held by another live module fails.
  RegistrationInfo info;
  info.requested_uadd = kNameServerUAdd.raw();
  auto taken = rig.mod->nsp().register_module(info);
  EXPECT_EQ(taken.code(), Errc::already_exists);
  // Requesting a dynamic-range UAdd as "well-known" is a caller error.
  RegistrationInfo bad;
  bad.requested_uadd = kFirstDynamicUAdd + 5;
  EXPECT_EQ(rig.mod->nsp().register_module(bad).code(), Errc::bad_argument);
}

TEST(NameServerDb, MalformedRequestAnsweredWithError) {
  Rig rig;
  SendOptions opts;
  opts.internal = true;
  opts.timeout = 2s;
  auto reply = rig.mod->lcm().request(
      kNameServerUAdd, Payload::raw(to_bytes("not an NSP message")), opts);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(nsp::decode_ok_response(reply.value().payload).code(),
            Errc::bad_message);
  EXPECT_GE(rig.tb.name_server().stats().bad_requests, 1u);
}

TEST(NameServerDb, GatewayRegistryServed) {
  Testbed tb;
  tb.net("n1");
  tb.net("n2");
  tb.machine("m1", Arch::vax780, {"n1"});
  tb.machine("gw", Arch::apollo_dn330, {"n1", "n2"});
  tb.machine("m2", Arch::sun3, {"n2"});
  ASSERT_TRUE(tb.start_name_server("m1", "n1").ok());
  ASSERT_TRUE(tb.add_gateway("gw-1", "gw", {"n1", "n2"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto mod = tb.spawn_module("m", "m2", "n2").value();
  auto gws = mod->nsp().gateways();
  ASSERT_TRUE(gws.ok());
  ASSERT_EQ(gws.value().size(), 1u);
  EXPECT_EQ(gws.value()[0].name, "gw-1");
  ASSERT_EQ(gws.value()[0].nets.size(), 2u);
  EXPECT_EQ(gws.value()[0].uadd, tb.gateway(0).uadd());
  mod->stop();
}

// ----------------------------------------------------- lease TTL edges
//
// The lease cache's boundary behaviour, on the classic single-server rig
// (the lease/epoch protocol is the same whether there is one shard or N).

TEST(NspLease, FreshLeaseServesLocallyExpiredLeaseGoesBack) {
  Rig rig;
  auto client = rig.tb.spawn_module("ttl-client", "m1", "lan").value();

  auto first = client->commod().locate("mod");
  ASSERT_TRUE(first.ok());
  auto lease = client->nsp().lease_peek("mod");
  ASSERT_TRUE(lease.has_value());
  EXPECT_GT(lease->expiry, std::chrono::steady_clock::now());

  // While the lease is fresh, repeats never cross the wire.
  const std::uint64_t server_before = rig.tb.name_server().stats().lookups;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->commod().locate("mod").ok());
  }
  EXPECT_EQ(rig.tb.name_server().stats().lookups, server_before);

  // The TTL boundary is strict: a lease is good strictly *before* its
  // expiry instant. Retire it to exactly "now" — the very next lookup
  // must go back to the server (and succeed, re-leasing the name).
  client->nsp().debug_force_expire("mod");
  auto again = client->commod().locate("mod");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), first.value());
  EXPECT_EQ(rig.tb.name_server().stats().lookups, server_before + 1);
  auto release = client->nsp().lease_peek("mod");
  ASSERT_TRUE(release.has_value());
  EXPECT_GT(release->expiry, std::chrono::steady_clock::now());

  client->stop();
}

TEST(NspLease, RenewalAcrossEpochBumpCarriesTheNewEpoch) {
  Rig rig;
  auto client = rig.tb.spawn_module("epoch-client", "m2", "lan").value();

  ASSERT_TRUE(client->commod().locate("mod").ok());
  auto lease1 = client->nsp().lease_peek("mod");
  ASSERT_TRUE(lease1.has_value());
  EXPECT_EQ(lease1->epoch, rig.tb.name_server().epoch());

  // A module move bumps the server's epoch; the renewed lease must carry
  // it, and the stale-epoch lease must have been dropped rather than
  // merely overwritten (the invalidation counter says which happened).
  const std::uint64_t old_epoch = rig.tb.name_server().epoch();
  const auto stats_before = client->nsp().stats();
  rig.mod->stop();
  rig.mod = rig.tb.spawn_module("mod", "m1", "lan").value();
  EXPECT_EQ(rig.tb.name_server().epoch(), old_epoch + 1);

  client->nsp().debug_force_expire("mod");
  auto moved = client->commod().locate("mod");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), rig.mod->identity().uadd());
  auto lease2 = client->nsp().lease_peek("mod");
  ASSERT_TRUE(lease2.has_value());
  EXPECT_EQ(lease2->epoch, old_epoch + 1);
  EXPECT_GT(client->nsp().stats().lease_invalidations,
            stats_before.lease_invalidations);

  client->stop();
}

TEST(NspLease, StaleLeaseSelfCorrectsThroughTheAddressFaultRetry) {
  Rig rig;
  auto client = rig.tb.spawn_module("fault-client", "m1", "lan").value();

  auto stale = client->commod().locate("mod");
  ASSERT_TRUE(stale.ok());

  // Reconfigure under the client's feet: "mod" moves while the client's
  // lease is still fresh. The lease now names a dead UAdd — the allowed
  // outcome is a fresh answer or an address-fault retry that lands on the
  // new incarnation, never a hard failure and never the old location as a
  // *delivery* target.
  const UAdd old_uadd = rig.mod->identity().uadd();
  rig.mod->stop();
  rig.mod = rig.tb.spawn_module("mod", "m1", "lan").value();
  std::jthread echo([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.mod->commod().receive(std::chrono::milliseconds(50));
      if (in.ok() && in.value().is_request) {
        (void)rig.mod->commod().reply(in.value().reply_ctx,
                                      to_bytes("new-gen"));
      }
    }
  });

  // The cached (now stale) lease still answers locate() — that is the
  // documented contract — but *using* it triggers the LCM forward() retry,
  // which purges the lease and re-resolves to the new incarnation.
  const auto stats_before = client->nsp().stats();
  auto reply = client->commod().request(stale.value(), to_bytes("hi"),
                                        std::chrono::seconds(5));
  ASSERT_TRUE(reply.ok()) << reply.error().what();
  EXPECT_EQ(to_string(reply.value().payload), "new-gen");
  EXPECT_GT(client->nsp().stats().lease_invalidations,
            stats_before.lease_invalidations);

  // After the self-correction the lease cache names the new UAdd.
  auto fresh = client->commod().locate("mod");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value(), rig.mod->identity().uadd());
  EXPECT_NE(fresh.value(), old_uadd);

  echo.request_stop();
  client->stop();
}

}  // namespace
}  // namespace ntcs::core
