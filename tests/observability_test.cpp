// Tests for the §6.2 debugging story: "One must also know *why* a layer is
// being called, and *who* is calling it. However, adequate *selectivity*
// in observing this information is equally important." The log layer tags
// + per-layer levels + capture ring are that mechanism; these tests drive
// real traffic and assert the record stream is attributable and filterable.
#include <gtest/gtest.h>

#include "common/log.h"
#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct CaptureGuard {
  CaptureGuard() {
    Log::instance().set_capture(true);
    Log::instance().clear_captured();
  }
  ~CaptureGuard() {
    Log::instance().set_capture(false);
    Log::instance().set_default_level(LogLevel::warn);
    for (const char* layer : {"nd", "ip", "lcm", "nsp", "ali"}) {
      Log::instance().set_layer_level(layer, LogLevel::warn);
    }
  }
};

TEST(Observability, TrafficProducesAttributableRecords) {
  CaptureGuard guard;
  Log::instance().set_default_level(LogLevel::off);  // keep stderr quiet
  Log::instance().set_layer_level("nd", LogLevel::off);

  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("talker", "m1", "lan").value();
  auto b = tb.spawn_module("listener", "m2", "lan").value();
  auto addr = a->commod().locate("listener").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("traced")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());

  const auto records = Log::instance().captured();
  ASSERT_FALSE(records.empty());
  // Every record names its layer AND its module — the "who is calling"
  // dimension the paper found tracebacks could not provide.
  bool nd_seen = false, module_seen = false;
  for (const auto& r : records) {
    EXPECT_FALSE(r.layer.empty());
    EXPECT_FALSE(r.module.empty());
    nd_seen |= r.layer == "nd";
    module_seen |= r.module == "talker";
  }
  EXPECT_TRUE(nd_seen);
  EXPECT_TRUE(module_seen);
  a->stop();
  b->stop();
}

TEST(Observability, FaultPathLeavesTrace) {
  CaptureGuard guard;
  Log::instance().set_default_level(LogLevel::off);

  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("x")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());
  Log::instance().clear_captured();

  b->stop();
  auto gen2 = tb.spawn_module("b", "m1", "lan").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("y")).ok());
  ASSERT_TRUE(gen2->commod().receive(2s).ok());

  // The recovery is visible in the stream: an lcm fault record and the
  // relocation record, attributed to module "a".
  bool fault_logged = false, relocation_logged = false;
  for (const auto& r : Log::instance().captured()) {
    if (r.layer == "lcm" && r.module == "a") {
      if (r.text.find("address fault") != std::string::npos) {
        fault_logged = true;
      }
      if (r.text.find("relocated") != std::string::npos) {
        relocation_logged = true;
      }
    }
  }
  EXPECT_TRUE(fault_logged);
  EXPECT_TRUE(relocation_logged);
  a->stop();
  gen2->stop();
}

TEST(Observability, SelectivityFiltersStderrNotCapture) {
  CaptureGuard guard;
  // With every layer off, nothing reaches stderr but the capture ring
  // still records — the paper's "selectivity" requirement as two
  // independent axes.
  Log::instance().set_default_level(LogLevel::off);
  LayerLog lcm("lcm", "mod");
  lcm.error("captured but not printed");
  EXPECT_FALSE(Log::instance().enabled(LogLevel::error, "lcm"));
  ASSERT_EQ(Log::instance().captured().size(), 1u);
  EXPECT_EQ(Log::instance().captured()[0].text, "captured but not printed");
  // Opening up one layer leaves the others quiet.
  Log::instance().set_layer_level("nd", LogLevel::trace);
  EXPECT_TRUE(Log::instance().enabled(LogLevel::trace, "nd"));
  EXPECT_FALSE(Log::instance().enabled(LogLevel::error, "ip"));
}

}  // namespace
}  // namespace ntcs::core
