// Tests for the §6.2 debugging story: "One must also know *why* a layer is
// being called, and *who* is calling it. However, adequate *selectivity*
// in observing this information is equally important." The log layer tags
// + per-layer levels + capture ring are that mechanism; these tests drive
// real traffic and assert the record stream is attributable and filterable.
#include <gtest/gtest.h>

#include "common/log.h"
#include "common/metrics.h"
#include "core/testbed.h"
#include "drts/monitor.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct CaptureGuard {
  CaptureGuard() {
    Log::instance().set_capture(true);
    Log::instance().clear_captured();
  }
  ~CaptureGuard() {
    Log::instance().set_capture(false);
    Log::instance().set_default_level(LogLevel::warn);
    for (const char* layer : {"nd", "ip", "lcm", "nsp", "ali"}) {
      Log::instance().set_layer_level(layer, LogLevel::warn);
    }
  }
};

TEST(Observability, TrafficProducesAttributableRecords) {
  CaptureGuard guard;
  Log::instance().set_default_level(LogLevel::off);  // keep stderr quiet
  Log::instance().set_layer_level("nd", LogLevel::off);

  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("talker", "m1", "lan").value();
  auto b = tb.spawn_module("listener", "m2", "lan").value();
  auto addr = a->commod().locate("listener").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("traced")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());

  const auto records = Log::instance().captured();
  ASSERT_FALSE(records.empty());
  // Every record names its layer AND its module — the "who is calling"
  // dimension the paper found tracebacks could not provide.
  bool nd_seen = false, module_seen = false;
  for (const auto& r : records) {
    EXPECT_FALSE(r.layer.empty());
    EXPECT_FALSE(r.module.empty());
    nd_seen |= r.layer == "nd";
    module_seen |= r.module == "talker";
  }
  EXPECT_TRUE(nd_seen);
  EXPECT_TRUE(module_seen);
  a->stop();
  b->stop();
}

TEST(Observability, FaultPathLeavesTrace) {
  CaptureGuard guard;
  Log::instance().set_default_level(LogLevel::off);

  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("x")).ok());
  ASSERT_TRUE(b->commod().receive(1s).ok());
  Log::instance().clear_captured();

  b->stop();
  auto gen2 = tb.spawn_module("b", "m1", "lan").value();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("y")).ok());
  ASSERT_TRUE(gen2->commod().receive(2s).ok());

  // The recovery is visible in the stream: an lcm fault record and the
  // relocation record, attributed to module "a".
  bool fault_logged = false, relocation_logged = false;
  for (const auto& r : Log::instance().captured()) {
    if (r.layer == "lcm" && r.module == "a") {
      if (r.text.find("address fault") != std::string::npos) {
        fault_logged = true;
      }
      if (r.text.find("relocated") != std::string::npos) {
        relocation_logged = true;
      }
    }
  }
  EXPECT_TRUE(fault_logged);
  EXPECT_TRUE(relocation_logged);
  a->stop();
  gen2->stop();
}

TEST(Observability, SelectivityFiltersStderrNotCapture) {
  CaptureGuard guard;
  // With every layer off, nothing reaches stderr but the capture ring
  // still records — the paper's "selectivity" requirement as two
  // independent axes.
  Log::instance().set_default_level(LogLevel::off);
  // Clear per-layer overrides a previous test's guard may have left (gtest
  // runs every test of this binary in one process when invoked directly).
  for (const char* layer : {"nd", "ip", "lcm", "nsp", "ali"}) {
    Log::instance().set_layer_level(layer, LogLevel::off);
  }
  LayerLog lcm("lcm", "mod");
  lcm.error("captured but not printed");
  EXPECT_FALSE(Log::instance().enabled(LogLevel::error, "lcm"));
  ASSERT_EQ(Log::instance().captured().size(), 1u);
  EXPECT_EQ(Log::instance().captured()[0].text, "captured but not printed");
  // Opening up one layer leaves the others quiet.
  Log::instance().set_layer_level("nd", LogLevel::trace);
  EXPECT_TRUE(Log::instance().enabled(LogLevel::trace, "nd"));
  EXPECT_FALSE(Log::instance().enabled(LogLevel::error, "ip"));
}

TEST(Observability, MetricsAttributeTrafficToLayersAndSurviveRemoteQuery) {
  // The metrics registry is the counter-shaped half of the §6.2 story: the
  // log stream says *why* a layer ran, the "layer.name" counters say *how
  // often* — and, like every other DRTS statistic, they are observable
  // over the NTCS itself with the same numbers a local snapshot shows.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  tb.machine("m3", Arch::apollo_dn330, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  drts::MonitorServer monitor(tb.node_config("", "m3", "lan"));
  ASSERT_TRUE(monitor.start().ok());
  auto a = tb.spawn_module("obs-a", "m1", "lan").value();
  auto b = tb.spawn_module("obs-b", "m2", "lan").value();
  auto addr = a->commod().locate("obs-b").value();
  auto mon_addr = a->commod().locate(drts::kMonitorName).value();
  // Warm the a->b circuit so the measured window contains no naming
  // traffic (the first send's NSP resolve is itself received by the Name
  // Server's LCM and would show up in the process-wide counters).
  ASSERT_TRUE(a->commod().send(addr, to_bytes("warm")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());

  metrics::Snapshot before = metrics::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(a->commod().send(addr, to_bytes("observed")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());
  metrics::Snapshot after = metrics::MetricsRegistry::instance().snapshot();

  // One app-level send decomposes into per-layer events, each attributed
  // to the layer that performed it.
  metrics::Snapshot d = after.delta(before);
  EXPECT_EQ(d.value("lcm.sends"), 1u);
  EXPECT_EQ(d.value("lcm.received"), 1u);
  EXPECT_GE(d.value("nd.msgs_sent"), 1u);
  EXPECT_GE(d.value("convert.mode.shift"), 1u);  // the header, at least

  // The same numbers through the DRTS monitor, over the NTCS. The query
  // is internal end to end, so the monitored-send metrics cannot have
  // moved between the local capture and the remote one.
  auto remote = drts::query_metrics(*a, mon_addr);
  ASSERT_TRUE(remote.ok());
  for (const char* name : {"lcm.sends", "lcm.dgrams", "lcm.requests"}) {
    EXPECT_EQ(remote.value().value(name), after.value(name)) << name;
  }
  a->stop();
  b->stop();
}

}  // namespace
}  // namespace ntcs::core
