// Overload tests (`ctest -L overload`): the end-to-end overload-control
// path under deliberately hostile load — bounded inbound queues shedding
// with busy-frame back-pressure, deadline-aware admission control at the
// sender, control-plane priority surviving a data-plane storm, per-peer
// fairness at a gateway relay, and the memory bound the queues exist to
// enforce. Every storm also doubles as a lock-rank probe: the shed and
// back-pressure paths run on pump threads with window locks held, so the
// suite asserts the validator saw zero inversions.
//
// Like the chaos suite, rigs run against a fixed fabric seed
// (NTCS_FABRIC_SEED overrides it for the verify.sh sweep); assertions are
// written against counters and outcome tallies, not exact schedules, so
// they hold under any thread interleaving.
#include <gtest/gtest.h>
#include <sys/resource.h>

// GCC defines __SANITIZE_ADDRESS__; Clang signals ASan via __has_feature.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NTCS_UNDER_ASAN 1
#endif
#endif

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "core/testbed.h"
#include "drts/monitor.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

std::uint64_t fabric_seed() {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 1;
}

/// Current high-water RSS in kilobytes (getrusage; Linux reports KiB).
long max_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

/// One LAN, a Name Server on m1, and a hand-built "victim" node on m2
/// whose inbound queue is deliberately tiny — the smallest stack on which
/// an overload storm hits the bound within a handful of messages.
struct OverloadRig {
  Testbed tb;
  std::unique_ptr<Node> sender;
  std::unique_ptr<Node> victim;
  UAdd victim_addr;

  explicit OverloadRig(std::size_t victim_queue, std::size_t reserve,
                       int sender_window_depth = 32)
      : tb(fabric_seed()) {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());

    auto scfg = tb.node_config("sender", "m1", "lan");
    scfg.lcm.window_depth = sender_window_depth;
    sender = std::make_unique<Node>(scfg);
    EXPECT_TRUE(sender->start().ok());
    EXPECT_TRUE(sender->commod().register_self().ok());

    auto vcfg = tb.node_config("victim", "m2", "lan");
    vcfg.lcm.max_inbound_queue = victim_queue;
    vcfg.lcm.control_reserve = reserve;
    victim = std::make_unique<Node>(vcfg);
    EXPECT_TRUE(victim->start().ok());
    EXPECT_TRUE(victim->commod().register_self().ok());

    auto addr = sender->commod().locate("victim");
    EXPECT_TRUE(addr.ok());
    victim_addr = addr.value();
  }

  ~OverloadRig() {
    sender->stop();
    victim->stop();
  }
};

TEST(Overload, BlockingQueueReservesControlHeadroom) {
  // capacity 4 with 2 reserved slots: data admission stops at 2, control
  // admission uses the full capacity, and nothing about pop changes.
  ntcs::BlockingQueue<int> q(4, 2);
  EXPECT_TRUE(q.push(1).ok());
  EXPECT_TRUE(q.push(2).ok());
  auto data_full = q.push(3);
  EXPECT_EQ(data_full.code(), ntcs::Errc::no_resource);
  EXPECT_TRUE(q.push_control(3).ok());
  EXPECT_TRUE(q.push_control(4).ok());
  auto truly_full = q.push_control(5);
  EXPECT_EQ(truly_full.code(), ntcs::Errc::no_resource);
  for (int want = 1; want <= 4; ++want) {
    auto got = q.pop_for(100ms);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), want);
  }
  // Draining reopens both classes.
  EXPECT_TRUE(q.push(6).ok());
}

TEST(Overload, SlowConsumerShedsAndBusyPausesTheSender) {
  // The victim never calls receive(): its 4-deep queue (1 slot reserved
  // for control) admits 3 data requests and must shed every further one
  // with a busy frame. The sender sees the shed as a fast retriable
  // overloaded — never a silent drop, never an unbounded queue.
  const std::uint64_t inversions_before = analysis::lock_inversions();
  OverloadRig rig(/*victim_queue=*/4, /*reserve=*/1);

  constexpr int kOffered = 40;
  int ok = 0, overloaded = 0, timeout = 0, other = 0;
  for (int i = 0; i < kOffered; ++i) {
    auto r = rig.sender->commod().request(rig.victim_addr, to_bytes("x"),
                                          250ms);
    if (r.ok()) {
      ++ok;
    } else if (r.code() == ntcs::Errc::overloaded) {
      ++overloaded;
    } else if (r.code() == ntcs::Errc::timeout) {
      ++timeout;
    } else {
      ++other;
    }
  }
  // Outcome reconciliation: every offered request is accounted for.
  EXPECT_EQ(ok + overloaded + timeout + other, kOffered);
  EXPECT_EQ(other, 0);
  // Nothing can complete (no consumer); the queued head-of-line requests
  // time out, everything past the bound is shed fast.
  EXPECT_EQ(ok, 0);
  EXPECT_GE(overloaded, kOffered / 2);
  EXPECT_LE(timeout, 8);

  const auto vstats = rig.victim->lcm().stats();
  EXPECT_GE(vstats.shed, static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(vstats.busy_frames, vstats.shed);
  const auto sstats = rig.sender->lcm().stats();
  // Serial resubmission inside the 2ms busy window: the sender paused
  // admission at least once instead of hammering the shedding peer.
  EXPECT_GE(sstats.busy_pauses + sstats.admission_rejects, 1u);

  EXPECT_EQ(analysis::lock_inversions(), inversions_before)
      << "busy/shed paths took locks against the documented rank order";
}

TEST(Overload, ExpiredWaitersNeverWedgeTheWindow) {
  // Regression for the waiter-queue deadline leak: with a depth-1 window
  // held by a request that will never be answered, callers with short
  // deadlines park, expire, and must leave no residue — once the window
  // frees, a fresh request is admitted and completes immediately.
  OverloadRig rig(/*victim_queue=*/64, /*reserve=*/8,
                  /*sender_window_depth=*/1);

  // Occupy the single window slot (the victim is not consuming yet).
  auto hold = rig.sender->commod().request_async(rig.victim_addr,
                                                 to_bytes("hold"), 700ms);
  ASSERT_TRUE(hold.ok());

  // Pile expired waiters onto the held window, concurrently: all must
  // come back as timeouts, none may be admitted, none may wedge.
  std::vector<std::jthread> parked;
  std::atomic<int> timeouts{0};
  for (int i = 0; i < 6; ++i) {
    parked.emplace_back([&] {
      auto r = rig.sender->commod().request(rig.victim_addr,
                                            to_bytes("late"), 60ms);
      if (!r.ok() && r.code() == ntcs::Errc::timeout) ++timeouts;
    });
  }
  parked.clear();  // join all
  EXPECT_EQ(timeouts.load(), 6);

  // The holder expires too; its release sweeps whatever expired waiters
  // the grant pass finds still queued.
  auto held = rig.sender->commod().await(hold.value());
  EXPECT_FALSE(held.ok());

  // Start consuming and prove the window grants cleanly again.
  std::jthread echo([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.victim->commod().receive(50ms);
      if (in.ok() && in.value().is_request) {
        (void)rig.victim->commod().reply(in.value().reply_ctx,
                                         in.value().payload);
      }
    }
  });
  auto fresh = rig.sender->commod().request(rig.victim_addr,
                                            to_bytes("fresh"), 2s);
  EXPECT_TRUE(fresh.ok()) << fresh.error().what();
  echo.request_stop();
}

TEST(Overload, ControlPlaneSurvivesDataPlaneStorm) {
  // A DRTS monitor with a tiny inbound queue (6, half reserved for
  // control) is stormed with data-plane sends from three threads. The
  // reserve plus the internal-class bypass must keep the control plane
  // fully alive: every locate() and every query_traces() issued during
  // the storm completes, while the data plane is shedding.
  Testbed tb(fabric_seed());
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());

  auto mcfg = tb.node_config("", "m2", "lan");
  mcfg.lcm.max_inbound_queue = 6;
  mcfg.lcm.control_reserve = 3;
  drts::MonitorServer monitor(mcfg);
  ASSERT_TRUE(monitor.start().ok());

  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto mon_addr = a->commod().locate(drts::kMonitorName);
  ASSERT_TRUE(mon_addr.ok());

  static metrics::Counter& shed = metrics::counter("lcm.shed");
  const std::uint64_t shed_before = shed.value();

  std::atomic<bool> storming{true};
  std::vector<std::jthread> storm;
  for (int t = 0; t < 2; ++t) {
    storm.emplace_back([&] {
      const ntcs::Bytes junk = to_bytes(std::string(64, 'x'));
      while (storming.load(std::memory_order_relaxed)) {
        // Burst well past the 6-deep queue bound, then yield the (possibly
        // single) CPU briefly: the test measures queue admission under
        // overflow, not scheduler starvation of the serving loop.
        for (int i = 0; i < 64; ++i) {
          (void)a->commod().send(mon_addr.value(), junk);
        }
        std::this_thread::sleep_for(1ms);
      }
    });
  }

  int control_ok = 0;
  for (int i = 0; i < 5; ++i) {
    auto loc = a->commod().locate(drts::kMonitorName);
    EXPECT_TRUE(loc.ok()) << "locate starved during storm: "
                          << loc.error().what();
    auto traces = drts::query_traces(*a, mon_addr.value());
    EXPECT_TRUE(traces.ok()) << "harvest starved during storm: "
                             << traces.error().what();
    if (loc.ok() && traces.ok()) ++control_ok;
    std::this_thread::sleep_for(20ms);
  }
  storming.store(false);
  storm.clear();  // join

  EXPECT_EQ(control_ok, 5);
  EXPECT_GT(shed.value(), shed_before)
      << "the storm never hit the bound — the test proved nothing";
  a->stop();
}

TEST(Overload, GatewayFairnessMetersDataAndSparesControl) {
  // Two LANs joined by a gateway whose relay is metered to a trickle.
  // A data storm from a to b must be cut down at the relay (counted in
  // gw.fairness_drops, never silently), while control-class traffic —
  // b's naming lookups crossing the same gateway — bypasses the meter.
  const std::uint64_t inversions_before = analysis::lock_inversions();
  Testbed tb(fabric_seed());
  tb.net("lan-a");
  tb.net("lan-b");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("m2", Arch::sun3, {"lan-b"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw", "gw1", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan-a").value();
  auto b = tb.spawn_module("b", "m2", "lan-b").value();

  auto addr_b = a->commod().locate("b");
  ASSERT_TRUE(addr_b.ok());
  // Warm the relayed circuit before metering so establishment is not
  // part of the storm.
  ASSERT_TRUE(a->commod().send(addr_b.value(), to_bytes("warm")).ok());
  (void)b->commod().receive(1s);

  Gateway& gw = tb.gateway(0);
  for (std::size_t i = 0; i < gw.attachment_count(); ++i) {
    gw.attachment(i).ip().set_relay_fair_rate(50);
  }

  static metrics::Counter& drops = metrics::counter("gw.fairness_drops");
  const std::uint64_t drops_before = drops.value();

  constexpr int kStorm = 2000;
  const ntcs::Bytes junk = to_bytes(std::string(32, 'd'));
  for (int i = 0; i < kStorm; ++i) {
    ASSERT_TRUE(a->commod().send(addr_b.value(), junk).ok());
  }
  // send() is asynchronous: wait for the storm to finish traversing the
  // fabric (the drop counter stops moving) before judging the meter.
  std::uint64_t dropped = drops.value() - drops_before;
  for (int spin = 0; spin < 100; ++spin) {
    std::this_thread::sleep_for(50ms);
    const std::uint64_t again = drops.value() - drops_before;
    if (again == dropped && spin > 2) break;
    dropped = again;
  }
  EXPECT_GT(dropped, static_cast<std::uint64_t>(kStorm / 2))
      << "meter at 50 fps barely engaged against a " << kStorm << " burst";

  // Control class crosses the same saturated relay unmetered: a fresh
  // locate from b rides NSP traffic through the gateway to the Name
  // Server on lan-a.
  auto loc = b->commod().locate("a");
  EXPECT_TRUE(loc.ok()) << "control frame was metered: "
                        << loc.error().what();

  // Some of the burst survived the bucket (at least the initial burst
  // allowance), and nothing downstream broke.
  int delivered = 0;
  while (b->commod().receive(200ms).ok()) ++delivered;
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, kStorm);

  EXPECT_EQ(analysis::lock_inversions(), inversions_before);
  a->stop();
  b->stop();
}

TEST(Overload, BoundedMemoryUnderSustainedStorm) {
  // The point of every bound in this PR: a 4 KiB-payload storm against a
  // non-consuming victim must not grow the process by anything close to
  // the offered volume (~80 MiB). The victim's 64-deep queue pins the
  // buffered high-water mark near 256 KiB; everything else is shed.
  OverloadRig rig(/*victim_queue=*/64, /*reserve=*/8);

  // Touch the path once so steady-state allocations (circuit, buffers)
  // land before the baseline RSS reading.
  (void)rig.sender->commod().send(rig.victim_addr, to_bytes("warm"));
  std::this_thread::sleep_for(50ms);
  const long rss_before = max_rss_kb();

  constexpr int kMsgs = 20000;
  const ntcs::Bytes big = to_bytes(std::string(4096, 'm'));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(rig.sender->commod().send(rig.victim_addr, big).ok());
  }
  const long rss_growth = max_rss_kb() - rss_before;
  const auto vstats = rig.victim->lcm().stats();

  // Offered ~80 MiB; accept well under half of it as growth (allocator
  // slack, per-thread caches), which still proves the queue bound held.
  // Under ASan the RSS reading measures the sanitizer, not the queues —
  // redzones plus the malloc quarantine (freed shed buffers are kept
  // resident by design) add hundreds of MiB — so there the test's value
  // is the shed-path buffer-lifetime checking and the shed assertion,
  // and the RSS bound is left to the plain build.
#if !defined(__SANITIZE_ADDRESS__) && !defined(NTCS_UNDER_ASAN)
  EXPECT_LT(rss_growth, 32 * 1024)
      << "RSS grew " << rss_growth << " KiB during a bounded-queue storm";
#else
  (void)rss_growth;
#endif
  EXPECT_GT(vstats.shed, static_cast<std::uint64_t>(kMsgs / 2));
}

}  // namespace
}  // namespace ntcs::core
