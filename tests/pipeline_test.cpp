// Tests for the pipelined request engine: correlation-ID multiplexing of
// many outstanding requests on one IVC, the per-circuit sliding send
// window (fair FIFO admission, stall accounting, release on every exit
// path), per-request address-fault recovery, and the parallel NSP lookup
// built on top.
//
// The whole suite carries the `pipeline` ctest label; scripts/verify.sh
// re-runs it across a sweep of fabric seeds (NTCS_FABRIC_SEED) and under
// TSan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "common/metrics.h"
#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

/// Fabric seed for the current run: verify.sh sweeps this environment
/// variable so the same assertions run against many deterministic fault
/// and latency schedules.
std::uint64_t fabric_seed() {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 1;
}

struct Rig {
  Testbed tb;
  std::unique_ptr<Node> client;
  std::unique_ptr<Node> server;

  explicit Rig(LcmConfig lcm_cfg = {}) : tb(fabric_seed()) {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    NodeConfig cfg = tb.node_config("client", "m1", "lan");
    cfg.lcm = lcm_cfg;
    client = std::make_unique<Node>(std::move(cfg));
    EXPECT_TRUE(client->start().ok());
    EXPECT_TRUE(client->commod().register_self().ok());
    server = tb.spawn_module("server", "m2", "lan").value();
  }

  ~Rig() {
    if (client) client->stop();
    if (server) server->stop();
  }
};

/// Echo loop that answers requests with their own payload.
std::jthread echo_loop(Node& n) {
  return std::jthread([&n](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = n.commod().receive(20ms);
      if (in.ok() && in.value().is_request) {
        (void)n.commod().reply(in.value().reply_ctx, in.value().payload);
      }
    }
  });
}

TEST(Pipeline, ManyOutstandingRequestsOneCircuit) {
  Rig rig;
  auto loop = echo_loop(*rig.server);
  auto addr = rig.client->commod().locate("server").value();
  const std::uint64_t requests_before = rig.client->lcm().stats().requests;
  constexpr int kN = 24;
  std::vector<RequestTicket> tickets;
  for (int i = 0; i < kN; ++i) {
    auto t = rig.client->commod().request_async(
        addr, to_bytes("req-" + std::to_string(i)));
    ASSERT_TRUE(t.ok()) << t.error().to_string();
    tickets.push_back(t.value());
  }
  for (int i = 0; i < kN; ++i) {
    auto r = rig.client->commod().await(tickets[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(r.ok()) << i << ": " << r.error().to_string();
    EXPECT_EQ(to_string(r.value().payload), "req-" + std::to_string(i));
  }
  // All kN went out (the delta may also include a stray DRTS-internal
  // request issued concurrently — background traffic shares the layer).
  EXPECT_GE(rig.client->lcm().stats().requests - requests_before,
            static_cast<std::uint64_t>(kN));
}

TEST(Pipeline, AwaitInAnyOrder) {
  Rig rig;
  auto loop = echo_loop(*rig.server);
  auto addr = rig.client->commod().locate("server").value();
  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(rig.client->commod()
                          .request_async(addr, to_bytes(std::to_string(i)))
                          .value());
  }
  // Redeem newest-first: correlation IDs, not arrival order, pair replies
  // with requests.
  for (int i = 7; i >= 0; --i) {
    auto r = rig.client->commod().await(tickets[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(to_string(r.value().payload), std::to_string(i));
  }
}

TEST(Pipeline, TicketIsSingleUse) {
  Rig rig;
  auto loop = echo_loop(*rig.server);
  auto addr = rig.client->commod().locate("server").value();
  auto t = rig.client->commod().request_async(addr, to_bytes("once"));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(rig.client->commod().await(t.value()).ok());
  EXPECT_EQ(rig.client->commod().await(t.value()).code(), Errc::bad_argument);
  EXPECT_EQ(rig.client->commod().await(nullptr).code(), Errc::bad_argument);
}

TEST(Pipeline, WindowBlocksAtDepthAndCountsStalls) {
  LcmConfig cfg;
  cfg.window_depth = 2;
  Rig rig(cfg);
  auto addr = rig.client->commod().locate("server").value();

  // The server holds every request until told to answer, so the window
  // fills and stays full.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<ReplyCtx> held;
  std::jthread srv([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = rig.server->commod().receive(20ms);
      if (in.ok() && in.value().is_request) {
        std::unique_lock lk(mu);
        held.push_back(in.value().reply_ctx);
        cv.wait(lk, [&] { return release; });
        (void)rig.server->commod().reply(held.back(), in.value().payload);
      }
    }
  });

  // Two requests occupy the window; the third must stall in admission.
  auto t0 = rig.client->commod().request_async(addr, to_bytes("a"));
  auto t1 = rig.client->commod().request_async(addr, to_bytes("b"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  std::atomic<bool> third_issued{false};
  std::jthread blocked([&] {
    auto t2 = rig.client->commod().request_async(addr, to_bytes("c"));
    third_issued = true;
    if (t2.ok()) (void)rig.client->commod().await(t2.value());
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(third_issued.load());  // parked on the full window
  EXPECT_GE(rig.client->lcm().stats().window_stalls, 1u);

  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(rig.client->commod().await(t0.value()).ok());
  ASSERT_TRUE(rig.client->commod().await(t1.value()).ok());
  blocked.join();
  EXPECT_TRUE(third_issued.load());
  srv.request_stop();
}

TEST(Pipeline, AdmissionRespectsRequestDeadline) {
  // A request that cannot be admitted before its deadline fails with
  // timeout instead of blocking forever — and the window is intact for
  // later traffic.
  LcmConfig cfg;
  cfg.window_depth = 1;
  Rig rig(cfg);
  auto addr = rig.client->commod().locate("server").value();
  // The server is silent: the first request holds the window slot.
  auto t0 = rig.client->commod().request_async(addr, to_bytes("holder"),
                                               5s);
  ASSERT_TRUE(t0.ok());
  auto t1 = rig.client->commod().request_async(addr, to_bytes("late"),
                                               150ms);
  EXPECT_EQ(t1.code(), Errc::timeout);
  // Drain the server and answer the holder; the engine must recover.
  auto in = rig.server->commod().receive(1s);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(
      rig.server->commod().reply(in.value().reply_ctx, to_bytes("ok")).ok());
  auto r0 = rig.client->commod().await(t0.value());
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(to_string(r0.value().payload), "ok");
}

TEST(Pipeline, TimedOutAwaitReleasesWindowSlot) {
  LcmConfig cfg;
  cfg.window_depth = 1;
  Rig rig(cfg);
  auto addr = rig.client->commod().locate("server").value();
  // Silent server: the request times out in await(); the slot must come
  // back so the next request can be admitted immediately.
  auto t0 = rig.client->commod().request_async(addr, to_bytes("lost"),
                                               100ms);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(rig.client->commod().await(t0.value()).code(), Errc::timeout);
  auto loop = echo_loop(*rig.server);
  auto t1 = rig.client->commod().request_async(addr, to_bytes("next"), 2s);
  ASSERT_TRUE(t1.ok());
  auto r1 = rig.client->commod().await(t1.value());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(to_string(r1.value().payload), "next");
}

TEST(Pipeline, FifoAdmissionIsFair) {
  // With a window of 1 and N waiters, every waiter is eventually admitted
  // (no starvation) and completes.
  LcmConfig cfg;
  cfg.window_depth = 1;
  Rig rig(cfg);
  auto loop = echo_loop(*rig.server);
  auto addr = rig.client->commod().locate("server").value();
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5;
  std::atomic<int> ok{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string body =
            std::to_string(t) + ":" + std::to_string(i);
        auto r = rig.client->commod().request(addr, to_bytes(body), 10s);
        if (r.ok() && to_string(r.value().payload) == body) ++ok;
      }
    });
  }
  threads.clear();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
}

TEST(Pipeline, PendingRequestsRetryAcrossRelocation) {
  // Requests in flight when the destination dies are failed per-request by
  // the circuit teardown; each awaiting caller re-runs the §3.5 recovery
  // for its own request and lands on the successor module.
  Rig rig;
  auto addr = rig.client->commod().locate("server").value();
  // Park requests at a server that never answers.
  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = rig.client->commod().request_async(
        addr, to_bytes("r" + std::to_string(i)), 10s);
    ASSERT_TRUE(t.ok());
    tickets.push_back(t.value());
  }
  // Await on background threads so retries run concurrently.
  std::vector<std::jthread> waiters;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      auto r = rig.client->commod().await(tickets[static_cast<std::size_t>(i)]);
      if (r.ok() &&
          to_string(r.value().payload) == "r" + std::to_string(i)) {
        ++ok;
      }
    });
  }
  std::this_thread::sleep_for(100ms);
  // The old generation dies without replying; its successor echoes.
  rig.server->stop();
  rig.server.reset();
  auto next_gen = rig.tb.spawn_module("server", "m2", "lan").value();
  auto loop = echo_loop(*next_gen);
  waiters.clear();
  EXPECT_EQ(ok.load(), 4);
  next_gen->stop();
}

TEST(Pipeline, DepthMetricAndStallCounterRecorded) {
  const std::uint64_t stalls_before =
      metrics::counter("lcm.window_stalls").value();
  LcmConfig cfg;
  cfg.window_depth = 2;
  Rig rig(cfg);
  auto loop = echo_loop(*rig.server);
  auto addr = rig.client->commod().locate("server").value();
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        (void)rig.client->commod().request(
            addr, to_bytes(std::to_string(t * 100 + i)), 10s);
      }
    });
  }
  threads.clear();
  const auto snap = metrics::MetricsRegistry::instance().snapshot();
  const metrics::MetricValue* depth = snap.find("lcm.pipeline_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->count, 0u);
  // 16 requests through a 2-deep window from 4 threads: someone stalled.
  EXPECT_GT(metrics::counter("lcm.window_stalls").value(), stalls_before);
}

TEST(Pipeline, ParallelNameLookups) {
  Rig rig;
  auto extra = rig.tb.spawn_module("extra", "m2", "lan").value();
  auto res = rig.client->commod().locate_many(
      {"server", "extra", "no-such-module", "client"});
  ASSERT_TRUE(res.ok());
  const auto& v = res.value();
  ASSERT_EQ(v.size(), 4u);
  ASSERT_TRUE(v[0].ok());
  EXPECT_EQ(v[0].value(), rig.server->identity().uadd());
  ASSERT_TRUE(v[1].ok());
  EXPECT_EQ(v[1].value(), extra->identity().uadd());
  EXPECT_EQ(v[2].code(), Errc::not_found);
  ASSERT_TRUE(v[3].ok());
  EXPECT_EQ(v[3].value(), rig.client->identity().uadd());
  EXPECT_EQ(rig.client->commod().locate_many({}).code(), Errc::bad_argument);
  extra->stop();
}

TEST(Pipeline, ShutdownFailsParkedAdmissionWaiters) {
  LcmConfig cfg;
  cfg.window_depth = 1;
  Rig rig(cfg);
  auto addr = rig.client->commod().locate("server").value();
  // Silent server; one holder fills the window, one waiter parks.
  auto t0 = rig.client->commod().request_async(addr, to_bytes("h"), 10s);
  ASSERT_TRUE(t0.ok());
  std::atomic<bool> done{false};
  std::jthread parked([&] {
    auto t1 = rig.client->commod().request_async(addr, to_bytes("w"), 10s);
    if (t1.ok()) (void)rig.client->commod().await(t1.value());
    done = true;
  });
  std::this_thread::sleep_for(50ms);
  rig.client->stop();
  parked.join();
  EXPECT_TRUE(done.load());
  rig.client.reset();
}

}  // namespace
}  // namespace ntcs::core
