// Property-based sweeps: randomized topologies, message contents and
// relocation schedules, parameterized over seeds. Invariants checked:
//   P1 every pair of modules in a connected internetwork can converse;
//   P2 payloads arrive bit-identical regardless of size, content, machine
//      pair, or route length;
//   P3 a client issuing requests across any relocation schedule eventually
//      gets every request answered;
//   P4 schema messages survive any (src, dst) architecture pair.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "core/testbed.h"
#include "drts/process_control.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

constexpr Arch kArchs[] = {Arch::vax780, Arch::microvax, Arch::sun2,
                           Arch::sun3, Arch::apollo_dn330, Arch::pdp11_70};

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, AllPairsConverse) {
  // Build a random tree of 2..5 networks with a gateway per edge, scatter
  // 4 modules over random machines, then check all ordered pairs.
  Rng rng(GetParam());
  Testbed tb(GetParam());
  const int n_nets = static_cast<int>(rng.next_in(2, 5));
  std::vector<std::string> nets;
  for (int n = 0; n < n_nets; ++n) {
    nets.push_back("net-" + std::to_string(n));
    tb.net(nets.back());
  }
  // One machine per network at least.
  std::vector<std::string> machines;
  for (int n = 0; n < n_nets; ++n) {
    machines.push_back("m" + std::to_string(n));
    tb.machine(machines.back(), kArchs[rng.next_below(6)], {nets[n]});
  }
  ASSERT_TRUE(tb.start_name_server(machines[0], nets[0]).ok());
  // Tree edges: net i joins a random earlier net via a gateway machine.
  for (int n = 1; n < n_nets; ++n) {
    const int parent = static_cast<int>(rng.next_below(n));
    const std::string gm = "gwm-" + std::to_string(n);
    tb.machine(gm, kArchs[rng.next_below(6)], {nets[parent], nets[n]});
    ASSERT_TRUE(
        tb.add_gateway("gw-" + std::to_string(n), gm, {nets[parent], nets[n]})
            .ok());
  }
  ASSERT_TRUE(tb.finalize().ok());

  constexpr int kModules = 4;
  std::vector<std::unique_ptr<Node>> mods;
  for (int m = 0; m < kModules; ++m) {
    const int net = static_cast<int>(rng.next_below(n_nets));
    auto node = tb.spawn_module("mod-" + std::to_string(m), machines[net],
                                nets[net]);
    ASSERT_TRUE(node.ok()) << node.error().to_string();
    mods.push_back(std::move(node.value()));
  }
  // Echo loops on every module.
  std::vector<std::jthread> loops;
  for (auto& mod : mods) {
    loops.emplace_back([&mod](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = mod->commod().receive(50ms);
        if (in.ok() && in.value().is_request) {
          (void)mod->commod().reply(in.value().reply_ctx, in.value().payload);
        }
      }
    });
  }
  for (int i = 0; i < kModules; ++i) {
    for (int j = 0; j < kModules; ++j) {
      if (i == j) continue;
      auto addr = mods[static_cast<std::size_t>(i)]->commod().locate(
          "mod-" + std::to_string(j));
      ASSERT_TRUE(addr.ok());
      const std::string body =
          "pair " + std::to_string(i) + "->" + std::to_string(j);
      auto reply = mods[static_cast<std::size_t>(i)]->commod().request(
          addr.value(), to_bytes(body), 5s);
      ASSERT_TRUE(reply.ok())
          << i << "->" << j << ": " << reply.error().to_string();
      EXPECT_EQ(to_string(reply.value().payload), body);
    }
  }
  for (auto& t : loops) t.request_stop();
  loops.clear();
  for (auto& mod : mods) mod->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class RandomPayloads : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPayloads, BitExactAcrossRandomSizes) {
  Rng rng(GetParam() * 977);
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", kArchs[rng.next_below(6)], {"lan"});
  tb.machine("m2", kArchs[rng.next_below(6)], {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();
  for (int i = 0; i < 25; ++i) {
    // Sizes biased to exercise 0, tiny, MTU-straddling and large cases.
    std::size_t size;
    switch (rng.next_below(4)) {
      case 0: size = rng.next_below(4); break;
      case 1: size = rng.next_below(512); break;
      case 2: size = 16 * 1024 - 8 + rng.next_below(16); break;  // near MTU
      default: size = rng.next_below(200 * 1024); break;
    }
    Bytes msg(size);
    for (auto& byte : msg) byte = static_cast<std::uint8_t>(rng.next());
    ASSERT_TRUE(a->commod().send(addr, msg).ok());
    auto in = b->commod().receive(5s);
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in.value().payload, msg) << "size " << size;
  }
  a->stop();
  b->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPayloads,
                         ::testing::Values(1, 2, 3, 4));

class RelocationStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelocationStorm, EveryRequestEventuallyAnswered) {
  Rng rng(GetParam() * 31);
  Testbed tb;
  tb.net("lan");
  const std::vector<std::string> machines = {"m0", "m1", "m2"};
  for (std::size_t i = 0; i < machines.size(); ++i) {
    tb.machine(machines[i], kArchs[i % 6], {"lan"});
  }
  ASSERT_TRUE(tb.start_name_server("m0", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  ntcs::drts::ProcessController pc(tb);
  ASSERT_TRUE(
      pc.spawn("svc", "m1", "lan", {}, ntcs::drts::make_echo_service()).ok());
  auto client = tb.spawn_module("client", "m0", "lan").value();
  auto addr = client->commod().locate("svc").value();

  // Bounded churn: a fixed burst of relocations concurrent with the
  // requests. (Unbounded churn under heavy machine load can outpace
  // recovery indefinitely — a livelock the paper's design does not claim
  // to prevent; the property is convergence once churn is finite.)
  std::jthread mover([&] {
    for (int i = 0; i < 25; ++i) {
      (void)pc.relocate("svc",
                        machines[rng.next_below(machines.size())], "lan");
      std::this_thread::sleep_for(std::chrono::milliseconds(
          5 + rng.next_below(10)));
    }
  });
  int answered = 0;
  constexpr int kRequests = 40;
  for (int i = 0; i < kRequests; ++i) {
    // A request may race a kill window (module gone, successor not yet
    // registered) — retry, as an application would. The budget is generous
    // because under full-suite load a respawn (node start + registration)
    // can take hundreds of milliseconds.
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto reply = client->commod().request(
          addr, to_bytes(std::to_string(i)), 2s);
      if (reply.ok()) {
        EXPECT_EQ(to_string(reply.value().payload),
                  "echo:" + std::to_string(i));
        ++answered;
        break;
      }
      std::this_thread::sleep_for(10ms);
    }
  }
  mover.join();
  EXPECT_EQ(answered, kRequests);
  client->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelocationStorm, ::testing::Values(1, 2, 3));

struct ArchPairParam {
  Arch src;
  Arch dst;
};

class SchemaOverWire : public ::testing::TestWithParam<ArchPairParam> {};

TEST_P(SchemaOverWire, RecordsSurviveAnyArchPair) {
  const auto [src_arch, dst_arch] = GetParam();
  Testbed tb;
  tb.net("lan");
  tb.machine("src", src_arch, {"lan"});
  tb.machine("dst", dst_arch, {"lan"});
  ASSERT_TRUE(tb.start_name_server("src", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "src", "lan").value();
  auto b = tb.spawn_module("b", "dst", "lan").value();

  convert::MessageSchema schema("probe",
                                {{"x", convert::FieldType::u64},
                                 {"y", convert::FieldType::i64},
                                 {"f", convert::FieldType::f64},
                                 {"c", convert::FieldType::chars, 16}});
  Rng rng(arch_wire_id(src_arch) * 17 + arch_wire_id(dst_arch));
  auto addr = a->commod().locate("b").value();
  for (int i = 0; i < 5; ++i) {
    auto rec = schema.make_record();
    ASSERT_TRUE(rec.set_u64("x", rng.next()).ok());
    ASSERT_TRUE(rec.set_i64("y", static_cast<std::int64_t>(rng.next())).ok());
    ASSERT_TRUE(rec.set_f64("f", rng.next_double() * 1e9).ok());
    ASSERT_TRUE(rec.set_string("c", "id-" + std::to_string(i)).ok());
    auto payload = a->commod().payload_for(rec);
    ASSERT_TRUE(payload.ok());
    ASSERT_TRUE(a->commod().send(addr, payload.value()).ok());
    auto in = b->commod().receive(2s);
    ASSERT_TRUE(in.ok());
    // Mode must match the compatibility matrix.
    EXPECT_EQ(in.value().mode,
              convert::choose_mode(src_arch, dst_arch));
    auto decoded = b->commod().decode(in.value(), schema);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), rec);
  }
  a->stop();
  b->stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SchemaOverWire, [] {
      std::vector<ArchPairParam> pairs;
      for (Arch s : kArchs) {
        for (Arch d : kArchs) pairs.push_back({s, d});
      }
      return ::testing::ValuesIn(pairs);
    }(),
    [](const ::testing::TestParamInfo<ArchPairParam>& info) {
      return std::string(convert::arch_name(info.param.src)) + "_to_" +
             std::string(convert::arch_name(info.param.dst));
    });

// ---------------------------------------------------------------------------
// P5 (pipelined correlation): with many requests outstanding on one
// circuit from many threads, under fault injection, a reply redeemed for a
// ticket always carries *that request's* payload — never another
// request's, never a duplicate, never garbage. The fabric seed comes from
// NTCS_FABRIC_SEED when set (scripts/verify.sh sweeps it), so one binary
// checks the property across many deterministic fault schedules.

std::uint64_t env_fabric_seed(std::uint64_t fallback) {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return fallback;
}

struct ChaosClass {
  const char* name;
  simnet::FaultPlan plan;
};

std::vector<ChaosClass> chaos_classes() {
  std::vector<ChaosClass> out;
  {
    ChaosClass c{"dup", {}};
    c.plan.dup_prob = 0.3;
    out.push_back(c);
  }
  {
    ChaosClass c{"reorder", {}};
    c.plan.reorder_prob = 0.2;
    c.plan.reorder_window = std::chrono::milliseconds(1);
    c.plan.jitter = std::chrono::microseconds(200);
    out.push_back(c);
  }
  {
    ChaosClass c{"flap", {}};
    c.plan.flap_period = std::chrono::milliseconds(40);
    c.plan.flap_down = std::chrono::milliseconds(8);
    out.push_back(c);
  }
  return out;
}

class PipelinedChaos : public ::testing::TestWithParam<ChaosClass> {};

TEST_P(PipelinedChaos, EveryReplyMatchesItsOwnRequest) {
  const ChaosClass& cls = GetParam();
  Testbed tb(env_fabric_seed(1));
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto client = tb.spawn_module("client", "m1", "lan").value();
  auto server = tb.spawn_module("server", "m2", "lan").value();
  auto addr = client->commod().locate("server").value();

  // Echo loop: the reply *is* the request payload, so a cross-matched
  // correlation ID is immediately visible at the client.
  std::jthread echo([&server](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = server->commod().receive(20ms);
      if (in.ok() && in.value().is_request) {
        (void)server->commod().reply(in.value().reply_ctx,
                                     in.value().payload);
      }
    }
  });

  const auto lan = tb.fabric().network_by_name("lan").value();
  tb.fabric().set_fault_plan(lan, cls.plan);

  constexpr int kThreads = 4;     // M concurrent issuers
  constexpr int kPerThread = 10;  // K requests each
  constexpr int kBatch = 4;       // outstanding tickets per issuer
  std::atomic<int> answered{0};
  std::atomic<int> mismatched{0};
  std::vector<std::jthread> issuers;
  for (int t = 0; t < kThreads; ++t) {
    issuers.emplace_back([&, t] {
      int done = 0;
      while (done < kPerThread) {
        // Issue a batch of pipelined requests, then redeem them all;
        // individual requests may time out under a flapping link and are
        // retried (fresh ticket) until the budget runs out.
        const int n = std::min(kBatch, kPerThread - done);
        std::vector<std::pair<std::string, RequestTicket>> batch;
        for (int i = 0; i < n; ++i) {
          const std::string body = "t" + std::to_string(t) + "-req" +
                                   std::to_string(done + i) + "-seed" +
                                   std::to_string(env_fabric_seed(1));
          auto ticket =
              client->commod().request_async(addr, to_bytes(body), 2s);
          if (ticket.ok()) batch.emplace_back(body, ticket.value());
        }
        for (auto& [body, ticket] : batch) {
          bool ok = false;
          auto r = client->commod().await(ticket);
          for (int attempt = 0; attempt < 100; ++attempt) {
            if (r.ok()) {
              if (to_string(r.value().payload) == body) {
                ok = true;
              } else {
                ++mismatched;
              }
              break;
            }
            auto again = client->commod().request_async(
                addr, to_bytes(body), 2s);
            if (again.ok()) r = client->commod().await(again.value());
          }
          if (ok) ++answered;
          ++done;
        }
      }
    });
  }
  issuers.clear();
  EXPECT_EQ(mismatched.load(), 0) << "cross-correlated replies under "
                                  << cls.name;
  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  tb.fabric().clear_faults();
  client->stop();
  server->stop();
}

INSTANTIATE_TEST_SUITE_P(FaultClasses, PipelinedChaos,
                         ::testing::ValuesIn(chaos_classes()),
                         [](const ::testing::TestParamInfo<ChaosClass>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace ntcs::core
