// Tests for the real-socket STD-IF backend that only make sense over real
// TCP: OS port collisions, peers dying mid-stream, frames arriving split
// across arbitrary read() boundaries, malicious/garbled length prefixes,
// fd hygiene over many channel lifecycles, and a mixed fabric where a
// simnet network is gatewayed to a TCP network. The substrate-independent
// contract cases live in the backend-parameterized suites (nd_test,
// integration_test); this file is the realnet-only remainder.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "backend_harness.h"
#include "core/ip/gateway.h"
#include "core/node.h"
#include "core/nsp/static_resolver.h"
#include "realnet/tcp_backend.h"
#include "simnet/backend.h"

namespace ntcs::realnet {
namespace {

using namespace std::chrono_literals;
using core::IpcsDelivery;
using core::IpcsDeliveryKind;
using core::harness::reserve_loopback_port;

/// A plain OS TCP client speaking the backend's wire format by hand, so
/// tests control exactly where the byte-stream is cut.
class RawClient {
 public:
  explicit RawClient(const std::string& phys) {
    std::string host;
    std::uint16_t port = 0;
    EXPECT_TRUE(parse_tcp_phys(phys, host, port));
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)),
        0);
  }
  ~RawClient() { close_gracefully(); }

  void write_bytes(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  }

  void write_prefix(std::uint32_t frame_len) {
    const unsigned char hdr[4] = {
        static_cast<unsigned char>(frame_len >> 24),
        static_cast<unsigned char>(frame_len >> 16),
        static_cast<unsigned char>(frame_len >> 8),
        static_cast<unsigned char>(frame_len)};
    write_bytes(hdr, sizeof(hdr));
  }

  void write_frame(const std::string& payload) {
    write_prefix(static_cast<std::uint32_t>(payload.size()));
    write_bytes(payload.data(), payload.size());
  }

  /// FIN: what the kernel sends on behalf of a killed process.
  void close_gracefully() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// RST: connection torn down with data in flight (hard peer death).
  void close_with_reset() {
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// Receive deliveries until one of `kind` arrives; fails the test on
/// timeout or port closure.
IpcsDelivery recv_kind(core::IpcsPort& port, IpcsDeliveryKind kind,
                       std::chrono::nanoseconds total = 2s) {
  const auto deadline = std::chrono::steady_clock::now() + total;
  while (std::chrono::steady_clock::now() < deadline) {
    auto d = port.recv_for(50ms);
    if (!d.ok()) {
      EXPECT_EQ(d.code(), Errc::timeout);
      continue;
    }
    if (d.value().kind == kind) return d.value();
  }
  ADD_FAILURE() << "delivery of kind " << static_cast<int>(kind)
                << " never arrived";
  return {};
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)e;
    ++n;
  }
  return n;  // includes the iterator's own fd; constant across calls
}

TEST(Realnet, PhysFormatRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(format_tcp_phys("127.0.0.1", 4242), "127.0.0.1:4242");
  std::string host;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_tcp_phys("127.0.0.1:4242", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 4242);
  EXPECT_FALSE(parse_tcp_phys("no-port-here", host, port));
  EXPECT_FALSE(parse_tcp_phys("h:", host, port));
  EXPECT_FALSE(parse_tcp_phys("h:notanumber", host, port));
  EXPECT_FALSE(parse_tcp_phys("h:99999", host, port));
  EXPECT_FALSE(parse_tcp_phys("", host, port));
}

TEST(Realnet, BindOnPortInUseFailsWithAlreadyExists) {
  const std::uint16_t port = reserve_loopback_port();
  TcpConfig ca;
  ca.fixed_ports["svc"] = port;
  TcpBackend first(ca);
  auto held = first.bind("svc");
  ASSERT_TRUE(held.ok());

  TcpConfig cb;
  cb.fixed_ports["svc"] = port;
  TcpBackend second(cb);
  auto clash = second.bind("svc");
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.code(), Errc::already_exists);

  // The port becomes bindable again once the holder releases it.
  held.value()->close();
  auto retry = second.bind("svc");
  EXPECT_TRUE(retry.ok());
  retry.value()->close();
}

TEST(Realnet, FramesSplitAcrossArbitraryWritesAreReassembled) {
  TcpBackend backend;
  auto port = backend.bind("mod").value();

  RawClient peer(port->phys());
  recv_kind(*port, IpcsDeliveryKind::opened);

  // Dribble one frame: prefix in two writes, payload in three, with
  // pauses so each lands in its own read().
  const std::string payload = "reassembled across partial reads";
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8), static_cast<unsigned char>(len)};
  peer.write_bytes(hdr, 1);
  std::this_thread::sleep_for(5ms);
  peer.write_bytes(hdr + 1, 3);
  std::this_thread::sleep_for(5ms);
  peer.write_bytes(payload.data(), 10);
  std::this_thread::sleep_for(5ms);
  peer.write_bytes(payload.data() + 10, 10);
  std::this_thread::sleep_for(5ms);
  peer.write_bytes(payload.data() + 20, payload.size() - 20);

  auto d = recv_kind(*port, IpcsDeliveryKind::data);
  EXPECT_EQ(to_string(d.payload), payload);

  // Two frames in one write burst still arrive as two deliveries.
  peer.write_frame("first");
  peer.write_frame("second");
  EXPECT_EQ(to_string(recv_kind(*port, IpcsDeliveryKind::data).payload),
            "first");
  EXPECT_EQ(to_string(recv_kind(*port, IpcsDeliveryKind::data).payload),
            "second");
  port->close();
}

TEST(Realnet, PeerDeathMidFrameDropsThePartialAndSurfacesClosed) {
  TcpBackend backend;
  auto port = backend.bind("mod").value();

  RawClient peer(port->phys());
  const auto opened = recv_kind(*port, IpcsDeliveryKind::opened);

  peer.write_frame("complete frame");
  // A frame promising 100 bytes, of which only 10 ever arrive — then the
  // peer "process" dies (FIN from the kernel).
  peer.write_prefix(100);
  peer.write_bytes("truncated!", 10);
  peer.close_gracefully();

  EXPECT_EQ(to_string(recv_kind(*port, IpcsDeliveryKind::data).payload),
            "complete frame");
  const auto closed = recv_kind(*port, IpcsDeliveryKind::closed);
  EXPECT_EQ(closed.chan, opened.chan);
  // The truncated frame was never delivered.
  auto extra = port->recv_for(100ms);
  EXPECT_FALSE(extra.ok());
  port->close();
}

TEST(Realnet, PeerResetMidStreamSurfacesClosed) {
  TcpBackend backend;
  auto port = backend.bind("mod").value();

  RawClient peer(port->phys());
  const auto opened = recv_kind(*port, IpcsDeliveryKind::opened);
  peer.write_frame("before the reset");
  EXPECT_EQ(to_string(recv_kind(*port, IpcsDeliveryKind::data).payload),
            "before the reset");
  peer.close_with_reset();

  const auto closed = recv_kind(*port, IpcsDeliveryKind::closed);
  EXPECT_EQ(closed.chan, opened.chan);
  port->close();
}

TEST(Realnet, GarbledLengthPrefixClosesTheChannelNotThePort) {
  TcpBackend backend;
  auto port = backend.bind("mod").value();

  {
    // Length beyond the MTU: the reader refuses to allocate and drops
    // the channel.
    RawClient evil(port->phys());
    recv_kind(*port, IpcsDeliveryKind::opened);
    evil.write_prefix(static_cast<std::uint32_t>(tcp_mtu()) + 1);
    recv_kind(*port, IpcsDeliveryKind::closed);
  }
  {
    // Zero-length frame: equally malformed (ND never sends empty frames).
    RawClient evil(port->phys());
    recv_kind(*port, IpcsDeliveryKind::opened);
    evil.write_prefix(0);
    recv_kind(*port, IpcsDeliveryKind::closed);
  }

  // The port itself survived both and still accepts well-behaved peers.
  RawClient good(port->phys());
  recv_kind(*port, IpcsDeliveryKind::opened);
  good.write_frame("still serving");
  EXPECT_EQ(to_string(recv_kind(*port, IpcsDeliveryKind::data).payload),
            "still serving");
  port->close();
}

TEST(Realnet, ProbeTracksBindLifecycle) {
  TcpBackend backend;
  auto port = backend.bind("mod").value();
  const std::string phys = port->phys();
  EXPECT_TRUE(backend.probe(phys));
  // The probe's transient connect/disconnect must not wedge the port.
  RawClient peer(phys);
  recv_kind(*port, IpcsDeliveryKind::opened);
  peer.write_frame("after a probe");
  EXPECT_EQ(to_string(recv_kind(*port, IpcsDeliveryKind::data).payload),
            "after a probe");
  port->close();
  EXPECT_FALSE(backend.probe(phys));
  EXPECT_FALSE(backend.probe("not an address"));
}

// The FD-leak regression test of this PR's close-path audit: cycling many
// channels through open/use/close must return the process to its fd
// baseline — sockets are reaped, not merely shutdown, and reader threads
// are joined.
TEST(Realnet, FdCountReturnsToBaselineAfterOpenCloseCycles) {
  TcpBackend backend;
  auto server = backend.bind("server").value();
  auto client = backend.bind("client").value();

  auto* sp = dynamic_cast<TcpPort*>(server.get());
  auto* cp = dynamic_cast<TcpPort*>(client.get());
  ASSERT_NE(sp, nullptr);
  ASSERT_NE(cp, nullptr);

  // Drive recv_for (which runs the reaper) until every cycled channel is
  // joined and its socket closed on both sides.
  auto quiesce = [&] {
    for (int tries = 0;
         tries < 300 && (sp->channel_count() != 0 || cp->channel_count() != 0);
         ++tries) {
      (void)client->recv_for(10ms);
      (void)server->recv_for(10ms);
    }
    ASSERT_EQ(sp->channel_count(), 0u);
    ASSERT_EQ(cp->channel_count(), 0u);
  };

  auto cycle = [&] {
    auto chan = client->connect(server->phys());
    ASSERT_TRUE(chan.ok());
    const auto opened = recv_kind(*server, IpcsDeliveryKind::opened);
    ASSERT_TRUE(client
                    ->send(chan.value(), to_bytes("ping"),
                           ntcs::BytesView{})
                    .ok());
    EXPECT_EQ(
        to_string(recv_kind(*server, IpcsDeliveryKind::data).payload),
        "ping");
    ASSERT_TRUE(client->close_channel(chan.value()).ok());
    EXPECT_EQ(recv_kind(*server, IpcsDeliveryKind::closed).chan,
              opened.chan);
  };
  // Warm one full cycle so lazily-created fds are in the baseline, then
  // take the baseline only once both ports are fully reaped — a baseline
  // holding a transient channel fd would make the final count read low.
  cycle();
  quiesce();
  const std::size_t baseline = open_fd_count();

  for (int i = 0; i < 100; ++i) cycle();
  quiesce();
  EXPECT_EQ(open_fd_count(), baseline);

  server->close();
  client->close();
}

// The mixed-fabric tentpole case: a module on a simulated network reaches
// a module on a real-TCP network through the existing IP gateway relay —
// one gateway attachment binds through simnet, the other through real
// sockets, and neither end knows the difference.
TEST(Realnet, MixedSimnetTcpFabricRelaysThroughGateway) {
  simnet::Fabric fabric{1};
  auto sim_lan = fabric.add_network("sim-lan");
  auto m1 = fabric.add_machine("m1", convert::Arch::vax780, {sim_lan});
  auto gm = fabric.add_machine("gm", convert::Arch::sun3, {sim_lan});

  auto tcp_backend = std::make_shared<TcpBackend>();

  core::Gateway gw(
      "gw",
      {{std::make_shared<simnet::SimnetBackend>(fabric, gm,
                                                simnet::IpcsKind::tcp),
        "sim-lan"},
       {tcp_backend, "tcp-lan"}},
      core::UAdd::permanent(2));
  ASSERT_TRUE(gw.start().ok());

  core::NodeConfig cfg_a;
  cfg_a.name = "a";
  cfg_a.backend = std::make_shared<simnet::SimnetBackend>(
      fabric, m1, simnet::IpcsKind::tcp);
  cfg_a.net = "sim-lan";
  core::Node a(std::move(cfg_a));
  ASSERT_TRUE(a.start().ok());
  a.identity().set_uadd(core::UAdd::permanent(2001));

  core::NodeConfig cfg_b;
  cfg_b.name = "b";
  cfg_b.backend = tcp_backend;
  cfg_b.net = "tcp-lan";
  core::Node b(std::move(cfg_b));
  ASSERT_TRUE(b.start().ok());
  b.identity().set_uadd(core::UAdd::permanent(2002));

  core::StaticNameService svc;
  svc.add("a", core::UAdd::permanent(2001), a.phys(), "sim-lan");
  svc.add("b", core::UAdd::permanent(2002), b.phys(), "tcp-lan");
  svc.add_gateway(gw.record());
  core::use_static_naming(a, svc);
  core::use_static_naming(b, svc);

  // simnet -> gateway -> real TCP.
  ASSERT_TRUE(a.commod()
                  .send(core::UAdd::permanent(2002),
                        to_bytes("across substrates"))
                  .ok());
  auto in_b = b.commod().receive(3s);
  ASSERT_TRUE(in_b.ok());
  EXPECT_EQ(to_string(in_b.value().payload), "across substrates");
  EXPECT_EQ(in_b.value().src, core::UAdd::permanent(2001));

  // And back: real TCP -> gateway -> simnet.
  ASSERT_TRUE(b.commod()
                  .send(core::UAdd::permanent(2001),
                        to_bytes("return path"))
                  .ok());
  auto in_a = a.commod().receive(3s);
  ASSERT_TRUE(in_a.ok());
  EXPECT_EQ(to_string(in_a.value().payload), "return path");

  a.stop();
  b.stop();
  gw.stop();
}

}  // namespace
}  // namespace ntcs::realnet
