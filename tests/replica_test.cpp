// Tests for the replicated naming service (§7: "replicated for failure
// resiliency") — snapshot + incremental replication over the NTCS itself,
// read-only replicas, and transparent client failover.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct Rig {
  Testbed tb;

  Rig() {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    tb.machine("m3", Arch::apollo_dn330, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.add_name_server_replica("m3", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
  }

  void wait_replicated(std::size_t min_records) {
    for (int spin = 0; spin < 200; ++spin) {
      if (tb.replica(0).record_count() >= min_records) return;
      std::this_thread::sleep_for(5ms);
    }
  }
};

TEST(Replica, SnapshotArrives) {
  Rig rig;
  rig.wait_replicated(1);  // at least the primary's self entry
  EXPECT_GE(rig.tb.replica(0).record_count(), 1u);
  auto self = rig.tb.replica(0).db_lookup(kNameServerUAdd);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->name, "name-server");
  EXPECT_GE(rig.tb.name_server().stats().replications_sent, 1u);
  EXPECT_GE(rig.tb.replica(0).stats().replications_applied, 1u);
}

TEST(Replica, IncrementalUpdatesFlow) {
  Rig rig;
  auto mod = rig.tb.spawn_module("mod", "m2", "lan").value();
  rig.wait_replicated(2);
  auto rec = rig.tb.replica(0).db_lookup(mod->identity().uadd());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->name, "mod");
  EXPECT_EQ(rec->phys, mod->phys());
  mod->stop();
}

TEST(Replica, LookupsServedAfterPrimaryDeath) {
  Rig rig;
  auto target = rig.tb.spawn_module("target", "m2", "lan").value();
  rig.wait_replicated(2);

  rig.tb.name_server().stop();

  // A fresh module cannot register (writes need the primary) …
  auto late = rig.tb.make_node("late", "m2", "lan").value();
  EXPECT_FALSE(late->commod().register_self().ok());
  // … but resolution fails over to the replica transparently: the same
  // ComMod call, no application involvement.
  auto located = late->commod().locate("target");
  ASSERT_TRUE(located.ok()) << located.error().to_string();
  EXPECT_EQ(located.value(), target->identity().uadd());
  // And communication to the located module works (resolve also served by
  // the replica).
  ASSERT_TRUE(late->commod().send(located.value(), to_bytes("hi")).ok());
  auto in = target->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "hi");
  late->stop();
  target->stop();
}

TEST(Replica, ForwardingServedByReplica) {
  // Relocation recovery keeps working when only the replica survives: the
  // forwarding determination is a read-plus-probe the replica can do.
  Rig rig;
  auto gen1 = rig.tb.spawn_module("svc", "m2", "lan").value();
  auto client = rig.tb.spawn_module("client", "m1", "lan").value();
  auto addr = client->commod().locate("svc").value();
  ASSERT_TRUE(client->commod().send(addr, to_bytes("one")).ok());
  ASSERT_TRUE(gen1->commod().receive(2s).ok());

  // New generation registers while the primary is still up...
  gen1->stop();
  auto gen2 = rig.tb.spawn_module("svc", "m3", "lan").value();
  rig.wait_replicated(4);
  // ...then the primary dies. The client's next send faults; the
  // forwarding query fails over to the replica.
  rig.tb.name_server().stop();
  ASSERT_TRUE(client->commod().send(addr, to_bytes("two")).ok());
  auto in = gen2->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "two");
  client->stop();
  gen2->stop();
}

TEST(Replica, WritesRejectedWithClearError) {
  Rig rig;
  rig.wait_replicated(1);
  rig.tb.name_server().stop();
  auto node = rig.tb.make_node("writer", "m2", "lan").value();
  auto uadd = node->commod().register_self();
  EXPECT_FALSE(uadd.ok());
  EXPECT_EQ(uadd.code(), Errc::unsupported);  // replica's read-only answer
  EXPECT_GE(rig.tb.replica(0).stats().writes_rejected, 1u);
  node->stop();
}

TEST(Replica, FailoverAcrossNetworks) {
  // The replica lives on another network, behind a gateway: replication
  // traffic and the failover reconnect both traverse the chain.
  Testbed tb;
  tb.net("lan-a");
  tb.net("lan-b");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("gwm", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("m2", Arch::sun3, {"lan-b"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw", "gwm", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.add_name_server_replica("m2", "lan-b").ok());
  ASSERT_TRUE(tb.finalize().ok());

  auto target = tb.spawn_module("target", "m1", "lan-a").value();
  auto client = tb.spawn_module("client", "m1", "lan-a").value();
  for (int spin = 0; spin < 200 && tb.replica(0).record_count() < 3; ++spin) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_GE(tb.replica(0).record_count(), 3u);

  tb.name_server().stop();
  auto located = client->commod().locate("target");
  ASSERT_TRUE(located.ok()) << located.error().to_string();
  EXPECT_EQ(located.value(), target->identity().uadd());
  client->stop();
  target->stop();
}

TEST(Replica, PrimaryAloneStillWorks) {
  // A system without replicas must be unaffected by the failover logic.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  EXPECT_TRUE(a->commod().ping_name_server().ok());
  a->stop();
}

TEST(Replica, DeregistrationReplicates) {
  Rig rig;
  auto mod = rig.tb.spawn_module("gone-soon", "m2", "lan").value();
  rig.wait_replicated(2);
  ASSERT_TRUE(mod->commod().deregister().ok());
  // The replica must converge to the deregistered state.
  bool converged = false;
  for (int spin = 0; spin < 200; ++spin) {
    if (!rig.tb.replica(0).db_lookup(mod->identity().uadd()).has_value()) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(converged);
  mod->stop();
}

}  // namespace
}  // namespace ntcs::core
