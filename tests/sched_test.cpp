// sched_test.cpp — deterministic schedule exploration of the protocol
// core's known-dangerous interleaving trios (`ctest -L sched`).
//
// Each scenario is a small modeled protocol fragment built from the
// interposed primitives (ntcs::Mutex/CondVar, ntcs::Atomic, sched::Var),
// in two variants: the shipped logic (explored exhaustively within the
// budget — must report zero failures, zero races, zero rank inversions)
// and a seeded "reintroduce the historical bug" variant (the explorer
// must find the failing interleaving within the budget, shrink it, and
// the stored minimal replay in tests/replays/ must re-trigger it
// byte-for-byte).
//
// Historical bugs modeled:
//   * PR 6: TcpBackend::adopt_fd spawned the socket reader thread before
//     enqueueing the `opened` delivery — a fast peer's first frame could
//     overtake the open notification.
//   * PR 7: LcmSendWindow::grant_locked stopping at an expired front
//     waiter instead of sweeping past it — a live waiter behind it
//     starved (the window wedge).
//   * PR 8 (a): shard mint counters seeded at the common base instead of
//     base+shard — two shards mint the same UAdd.
//   * PR 8 (b): apply_replica_update not advancing the standby's mint
//     counter past replicated same-residue records — the first
//     post-promotion mint re-issues a live UAdd.
//   * PR 8 (c): a shard epoch bump that fails to purge the lease cache —
//     a lookup after failover serves a stale-epoch lease.
//
// Set NTCS_WRITE_REPLAYS=1 to regenerate the fixture files from a fresh
// exploration (they are checked in; regeneration is only needed when the
// scenarios or the explorer's decision ordering change).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sched.h"
#include "common/annotated.h"
#include "common/atomic.h"

namespace sc = ntcs::analysis::sched;
using ntcs::CondVar;
using ntcs::LockGuard;
using ntcs::Mutex;
using ntcs::UniqueLock;

namespace {

// `min_budget` lets a scenario whose (measured) schedule space is larger
// than the default budget still be explored to completion; the env
// override (NTCS_SCHED_BUDGET) can only widen it further.
sc::Options test_opts(long min_budget = 0) {
  sc::Options o = sc::Options::from_env();
  if (o.max_schedules < min_budget) o.max_schedules = min_budget;
  return o;
}

void log_cost(const char* name, const sc::Report& rep) {
  std::printf(
      "[sched-cost] %s: schedules=%ld steps=%ld failure-at=%ld "
      "shrink-runs=%ld minimal=%s\n",
      name, rep.schedules, rep.steps, rep.first_failure_schedule,
      rep.shrink_runs, rep.minimal.empty() ? "-" : rep.minimal.c_str());
}

// ---- PR 6: adopt_fd — `opened` delivery vs. reader-thread start ----------

constexpr int kOpened = 1;
constexpr int kData = 2;

void adopt_fd_scenario(bool bug) {
  struct St {
    Mutex mu{ntcs::lockrank::kRealnetInbox, "t.inbox"};
    CondVar cv;
    std::vector<int> events;
  };
  auto st = std::make_shared<St>();
  auto push = [st](int ev) {
    LockGuard lk(st->mu);
    st->events.push_back(ev);
    st->cv.notify_all();
  };
  sc::spawn([push, bug] {  // the acceptor adopting the connected fd
    if (bug) {
      // Seeded PR 6 bug: reader started before `opened` is enqueued —
      // its first delivery can overtake the open notification.
      sc::spawn([push] { push(kData); });
      push(kOpened);
    } else {
      push(kOpened);
      sc::spawn([push] { push(kData); });
    }
  });
  UniqueLock lk(st->mu);
  st->cv.wait(lk, [&] { return st->events.size() >= 2; });
  sc::check(st->events[0] == kOpened,
            "opened must precede first inbound frame");
}

// ---- PR 7: window grant vs. busy frame vs. expired-waiter sweep ----------

void window_scenario(bool bug) {
  struct Waiter {
    bool granted = false;
    bool expired = false;
  };
  struct St {
    Mutex mu{ntcs::lockrank::kLcmWindow, "t.window"};
    CondVar cv;
    // bound: 2 waiters in this fragment — the modeled window queue
    std::deque<Waiter*> queue;
    int in_flight = 1;  // the busy frame keeps the window full
    int depth = 1;
    Waiter a, b;
    bool a_enqueued = false;
    bool a_expired = false;
    bool b_enqueued = false;
    bool b_done = false;
  };
  auto st = std::make_shared<St>();
  auto grant_locked = [st, bug] {  // requires st->mu
    while (st->in_flight < st->depth && !st->queue.empty()) {
      Waiter* front = st->queue.front();
      if (front->expired) {
        if (bug) break;  // seeded PR 7 wedge: stop at the expired waiter
        st->queue.pop_front();  // shipped logic: sweep it, keep granting
        continue;
      }
      front->granted = true;
      st->queue.pop_front();
      ++st->in_flight;
      st->cv.notify_all();
    }
  };
  sc::spawn([st] {  // waiter A: its deadline passes while still queued
    UniqueLock lk(st->mu);
    st->queue.push_back(&st->a);
    st->a_enqueued = true;
    st->cv.notify_all();
    if (!st->cv.wait_for(lk, std::chrono::microseconds(1),
                         [&] { return st->a.granted; })) {
      st->a.expired = true;  // expired entry stays queued, as in the wedge
      st->a_expired = true;
      st->cv.notify_all();
    }
  });
  sc::spawn([st] {  // waiter B: live, FIFO-behind A
    UniqueLock lk(st->mu);
    st->cv.wait(lk, [&] { return st->a_enqueued; });
    st->queue.push_back(&st->b);
    st->b_enqueued = true;
    st->cv.notify_all();
    const bool ok = st->cv.wait_for(lk, std::chrono::milliseconds(1),
                                    [&] { return st->b.granted; });
    sc::check(ok && st->b.granted,
              "live waiter starved behind an expired one");
    st->b_done = true;
    st->cv.notify_all();
  });
  sc::spawn([st, grant_locked] {  // the busy frame completes; grants flow
    UniqueLock lk(st->mu);
    st->cv.wait(lk, [&] { return st->a_expired && st->b_enqueued; });
    --st->in_flight;
    grant_locked();
  });
  UniqueLock lk(st->mu);
  st->cv.wait(lk, [&] { return st->b_done; });
}

// ---- PR 8 (a): striped shard mint counters -------------------------------

void mint_stripe_scenario(bool bug) {
  constexpr int kBase = 1000;
  constexpr int kShards = 2;
  struct St {
    Mutex mu{ntcs::lockrank::kNameServerDb, "t.mintdb"};
    std::vector<int> minted;
  };
  auto st = std::make_shared<St>();
  for (int shard = 0; shard < kShards; ++shard) {
    sc::spawn([st, shard, bug] {
      // Seeded PR 8 bug (a): both shards' counters start at the common
      // base instead of base+shard — the residue classes collide.
      int next = bug ? kBase : kBase + shard;
      for (int i = 0; i < 2; ++i) {
        const int id = next;
        next += kShards;
        LockGuard lk(st->mu);
        for (int m : st->minted) {
          sc::check(m != id, "duplicate minted UAdd across shards");
        }
        st->minted.push_back(id);
      }
    });
  }
}

// ---- PR 8 (b): standby promotion vs. replica apply vs. mint --------------

void standby_mint_scenario(bool bug) {
  constexpr int kBase = 2000;
  constexpr int kShards = 2;
  constexpr int kShard = 0;
  struct St {
    Mutex mu{ntcs::lockrank::kNameServerDb, "t.repldb"};
    CondVar cv;
    // bound: 1 record in this fragment — the modeled replica stream
    std::deque<int> stream;
    std::vector<int> records;
    int standby_next = kBase + kShard;
    int applied = 0;
    bool promoted = false;
    bool primary_done = false;
  };
  auto st = std::make_shared<St>();
  sc::spawn([st] {  // primary: mints one UAdd, streams the record
    LockGuard lk(st->mu);
    st->stream.push_back(kBase + kShard);
    st->primary_done = true;
    st->cv.notify_all();
  });
  sc::spawn([st, bug] {  // standby: applies the replica stream
    UniqueLock lk(st->mu);
    st->cv.wait(lk, [&] { return !st->stream.empty(); });
    const int id = st->stream.front();
    st->stream.pop_front();
    st->records.push_back(id);
    // Seeded PR 8 bug (b): forget to advance the standby's mint counter
    // past a replicated record in its own residue class.
    if (!bug && id >= st->standby_next &&
        (id - kBase) % kShards == kShard) {
      st->standby_next = id + kShards;
    }
    ++st->applied;
    st->cv.notify_all();
  });
  sc::spawn([st] {  // promoter: flips the caught-up standby to primary
    UniqueLock lk(st->mu);
    st->cv.wait(lk, [&] { return st->primary_done && st->applied == 1; });
    st->promoted = true;
    st->cv.notify_all();
  });
  // Task 0: the first post-promotion mint on the new primary.
  UniqueLock lk(st->mu);
  st->cv.wait(lk, [&] { return st->promoted; });
  const int id = st->standby_next;
  st->standby_next += kShards;
  for (int m : st->records) {
    sc::check(m != id, "post-promotion mint re-used a replicated UAdd");
  }
  st->records.push_back(id);
}

// ---- PR 8 (c): lease invalidation vs. lookup vs. epoch bump --------------

void lease_scenario(bool bug) {
  struct Entry {
    int uadd = 0;
    int epoch = 0;
    bool present = false;
  };
  struct St {
    Mutex mu{ntcs::lockrank::kNspLease, "t.lease"};
    CondVar cv;
    Entry cache;
    int epoch = 1;
    bool installed = false;
  };
  auto st = std::make_shared<St>();
  sc::spawn([st] {  // resolver: installs a lease at the current epoch
    LockGuard lk(st->mu);
    st->cache = Entry{7, st->epoch, true};
    st->installed = true;
    st->cv.notify_all();
  });
  sc::spawn([st, bug] {  // primary failover bumps the shard epoch
    UniqueLock lk(st->mu);
    st->cv.wait(lk, [&] { return st->installed; });
    ++st->epoch;
    // Seeded PR 8 bug (c): the bump forgets to purge the shard's leases.
    if (!bug) st->cache.present = false;
  });
  // Task 0: a lookup that serves from the cache when an entry is present.
  UniqueLock lk(st->mu);
  st->cv.wait(lk, [&] { return st->installed; });
  if (st->cache.present) {
    sc::check(st->cache.epoch == st->epoch,
              "stale-epoch lease served after shard failover");
  }
}

// ---- race-detector subjects ----------------------------------------------

void counter_scenario(bool locked) {
  struct St {
    Mutex mu;  // unranked test scaffolding
    sc::Var<int> n{0, "counter"};
  };
  auto st = std::make_shared<St>();
  for (int i = 0; i < 2; ++i) {
    sc::spawn([st, locked] {
      if (locked) {
        LockGuard lk(st->mu);
        st->n.store(st->n.load() + 1);
      } else {
        st->n.store(st->n.load() + 1);
      }
    });
  }
}

void publish_scenario(bool relaxed) {
  struct St {
    sc::Var<int> payload{0, "payload"};
    ntcs::Atomic<int> flag{0};
  };
  auto st = std::make_shared<St>();
  sc::spawn([st, relaxed] {
    st->payload.store(42);
    st->flag.store(1, relaxed ? std::memory_order_relaxed
                              : std::memory_order_release);
  });
  while (st->flag.load(relaxed ? std::memory_order_relaxed
                               : std::memory_order_acquire) == 0) {
    sc::yield();
  }
  sc::check(st->payload.load() == 42, "published payload must be visible");
}

void rank_scenario(bool bug) {
  struct St {
    Mutex a{ntcs::lockrank::kLcmState, "t.rank.a"};
    Mutex b{ntcs::lockrank::kNdState, "t.rank.b"};
  };
  auto st = std::make_shared<St>();
  sc::spawn([st] {
    LockGuard la(st->a);
    LockGuard lb(st->b);
  });
  sc::spawn([st, bug] {
    if (bug) {  // opposite order: the classic deadlock cycle half
      LockGuard lb(st->b);
      LockGuard la(st->a);
    } else {
      LockGuard la(st->a);
      LockGuard lb(st->b);
    }
  });
}

// ---- fixture plumbing -----------------------------------------------------

std::string replay_path(const char* name) {
  return std::string(NTCS_REPLAY_DIR) + "/" + name + ".sched";
}

// Explores the seeded-bug variant, asserts the bug is found within the
// budget and that its stored minimal replay re-triggers it byte-for-byte.
void expect_bug_found_and_replayable(const char* name,
                                     const std::function<void()>& scenario,
                                     const char* expected_failure) {
  sc::Report rep = sc::explore(scenario, test_opts());
  log_cost(name, rep);
  ASSERT_TRUE(rep.failed) << name << ": explorer missed the seeded bug";
  EXPECT_NE(rep.failure.find(expected_failure), std::string::npos)
      << rep.failure;
  ASSERT_FALSE(rep.minimal.empty());

  // The minimal schedule alone re-triggers the same failure.
  sc::Report rr = sc::replay(scenario, rep.minimal, test_opts());
  EXPECT_TRUE(rr.failed) << name << ": minimal replay did not fail";
  EXPECT_EQ(rr.failure, rep.failure);

  const std::string path = replay_path(name);
  if (std::getenv("NTCS_WRITE_REPLAYS") != nullptr) {
    ASSERT_TRUE(sc::save_replay_file(path, rep.minimal));
  }
  auto stored = sc::load_replay_file(path);
  ASSERT_TRUE(stored.has_value())
      << "missing fixture " << path
      << " (regenerate with NTCS_WRITE_REPLAYS=1)";
  // Byte-for-byte: the checked-in minimal token is exactly what a fresh
  // exploration + shrink produces today.
  EXPECT_EQ(*stored, rep.minimal) << "fixture " << path << " is stale";
  sc::Report fr = sc::replay(scenario, *stored, test_opts());
  EXPECT_TRUE(fr.failed) << name << ": stored replay did not fail";
  EXPECT_NE(fr.failure.find(expected_failure), std::string::npos)
      << fr.failure;
}

void expect_clean(const char* name, const std::function<void()>& scenario,
                  long min_budget = 0) {
  sc::Report rep = sc::explore(scenario, test_opts(min_budget));
  log_cost(name, rep);
  EXPECT_FALSE(rep.failed) << name << ": " << rep.failure << " schedule "
                           << rep.schedule;
  EXPECT_TRUE(rep.complete)
      << name << ": exploration budget too small (" << rep.schedules
      << " schedules)";
  EXPECT_EQ(rep.races, 0);
  EXPECT_EQ(rep.inversions, 0);
}

}  // namespace

TEST(SchedExplore, AdoptFdCleanOrderHolds) {
  expect_clean("adopt_fd_clean", [] { adopt_fd_scenario(false); });
}

TEST(SchedExplore, AdoptFdSeededBugFound) {
  expect_bug_found_and_replayable("adopt_fd_bug",
                                  [] { adopt_fd_scenario(true); },
                                  "opened must precede");
}

TEST(SchedExplore, WindowSweepCleanGrantsLiveWaiter) {
  // Four tasks contending one mutex + condvar: the clean space measures
  // ~48k schedules under preemption bound 2 — the one scenario whose
  // exhaustive proof needs more than the default budget.
  expect_clean("window_clean", [] { window_scenario(false); }, 80000);
}

TEST(SchedExplore, WindowSweepSeededWedgeFound) {
  expect_bug_found_and_replayable("window_bug", [] { window_scenario(true); },
                                  "live waiter starved");
}

TEST(SchedExplore, MintStripeCleanUnique) {
  expect_clean("mint_stripe_clean", [] { mint_stripe_scenario(false); });
}

TEST(SchedExplore, MintStripeSeededCollisionFound) {
  expect_bug_found_and_replayable("mint_stripe_bug",
                                  [] { mint_stripe_scenario(true); },
                                  "duplicate minted UAdd");
}

TEST(SchedExplore, StandbyMintCleanAdvancesCounter) {
  expect_clean("standby_mint_clean", [] { standby_mint_scenario(false); });
}

TEST(SchedExplore, StandbyMintSeededReuseFound) {
  expect_bug_found_and_replayable("standby_mint_bug",
                                  [] { standby_mint_scenario(true); },
                                  "re-used a replicated UAdd");
}

TEST(SchedExplore, LeaseEpochCleanNeverServesStale) {
  expect_clean("lease_clean", [] { lease_scenario(false); });
}

TEST(SchedExplore, LeaseEpochSeededStaleServeFound) {
  expect_bug_found_and_replayable("lease_bug", [] { lease_scenario(true); },
                                  "stale-epoch lease served");
}

TEST(SchedRace, UnlockedCounterFlagged) {
  sc::Report rep = sc::explore([] { counter_scenario(false); }, test_opts());
  log_cost("counter_race", rep);
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.failure.find("happens-before race on counter"),
            std::string::npos)
      << rep.failure;
  EXPECT_GE(rep.races, 1);
}

TEST(SchedRace, LockedCounterClean) {
  expect_clean("counter_clean", [] { counter_scenario(true); });
}

TEST(SchedRace, RelaxedPublishFlagged) {
  sc::Report rep = sc::explore([] { publish_scenario(true); }, test_opts());
  log_cost("publish_race", rep);
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.failure.find("happens-before race on payload"),
            std::string::npos)
      << rep.failure;
}

TEST(SchedRace, ReleaseAcquirePublishClean) {
  expect_clean("publish_clean", [] { publish_scenario(false); });
}

TEST(SchedRank, InvertedOrderFlagged) {
  sc::Report rep = sc::explore([] { rank_scenario(true); }, test_opts());
  log_cost("rank_bug", rep);
  ASSERT_TRUE(rep.failed);
  // Either the validator flags the inversion or the explorer drives the
  // two tasks into the modeled deadlock the inversion makes possible —
  // both are the finding.
  EXPECT_TRUE(rep.failure.find("inversion") != std::string::npos ||
              rep.failure.find("deadlock") != std::string::npos)
      << rep.failure;
}

TEST(SchedRank, OrderedCleanNoInversion) {
  expect_clean("rank_clean", [] { rank_scenario(false); });
}

TEST(SchedReplay, TokenRoundTrip) {
  sc::ForcedSchedule f;
  f[12] = 1;
  f[30] = 0;
  f[41] = 2;
  const std::string tok = sc::format_token(f);
  EXPECT_EQ(tok, "v1:12@1,30@0,41@2");
  auto parsed = sc::parse_token(tok);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
  EXPECT_EQ(sc::format_token(sc::ForcedSchedule{}), "v1:-");
  auto empty = sc::parse_token("v1:-");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(sc::parse_token("v2:1@1").has_value());
  EXPECT_FALSE(sc::parse_token("v1:5@1,3@0").has_value());  // unsorted
  EXPECT_FALSE(sc::parse_token("v1:x").has_value());
}

TEST(SchedReplay, DivergentTokenReportsCleanly) {
  // A forced switch to a task that is not enabled at that step must be a
  // contained, described failure — not UB or a hang.
  sc::Report rep = sc::replay([] { adopt_fd_scenario(false); }, "v1:0@7",
                              test_opts());
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.failure.find("replay divergence"), std::string::npos)
      << rep.failure;
}
