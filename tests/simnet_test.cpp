// Unit tests for the simulated fabric (S2): topology, endpoints, channels,
// latency, loss, partitions, clocks, probes.
#include <gtest/gtest.h>

#include "convert/machine.h"
#include "simnet/fabric.h"
#include "simnet/phys.h"

namespace ntcs::simnet {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct Rig {
  Fabric fabric{1};
  NetworkId lan;
  MachineId vax;
  MachineId sun;

  Rig() {
    lan = fabric.add_network("lan-a");
    vax = fabric.add_machine("vax1", Arch::vax780, {lan});
    sun = fabric.add_machine("sun1", Arch::sun3, {lan});
  }
};

TEST(PhysFormat, TcpRoundTrip) {
  const std::string addr = format_tcp_addr("vax1", 5001);
  auto p = parse_phys(addr);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, IpcsKind::tcp);
  EXPECT_EQ(p->machine, "vax1");
  EXPECT_EQ(p->local, "5001");
}

TEST(PhysFormat, MbxRoundTrip) {
  const std::string addr = format_mbx_addr("apollo1", "server-mbx");
  auto p = parse_phys(addr);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, IpcsKind::mbx);
  EXPECT_EQ(p->machine, "apollo1");
  EXPECT_EQ(p->local, "server-mbx");
}

TEST(PhysFormat, RejectsGarbage) {
  EXPECT_FALSE(parse_phys("").has_value());
  EXPECT_FALSE(parse_phys("bogus").has_value());
  EXPECT_FALSE(parse_phys("tcp:").has_value());
  EXPECT_FALSE(parse_phys("tcp:host:notaport").has_value());
  EXPECT_FALSE(parse_phys("mbx:/nopath").has_value());
  EXPECT_FALSE(parse_phys("mbx://x").has_value());
}

TEST(PhysFormat, MtuDiffersByKind) {
  EXPECT_GT(ipcs_mtu(IpcsKind::tcp), ipcs_mtu(IpcsKind::mbx));
}

TEST(FabricTopology, NamesResolve) {
  Rig rig;
  EXPECT_EQ(rig.fabric.machine_by_name("vax1"), rig.vax);
  EXPECT_EQ(rig.fabric.network_by_name("lan-a"), rig.lan);
  EXPECT_FALSE(rig.fabric.machine_by_name("nope").has_value());
  EXPECT_EQ(rig.fabric.machine_arch(rig.vax), Arch::vax780);
  EXPECT_EQ(rig.fabric.machine_count(), 2u);
  EXPECT_EQ(rig.fabric.network_count(), 1u);
}

TEST(FabricTopology, AttachIsIdempotent) {
  Rig rig;
  rig.fabric.attach_machine(rig.vax, rig.lan);
  EXPECT_EQ(rig.fabric.machine_networks(rig.vax).size(), 1u);
}

TEST(Endpoint, BindAssignsDistinctTcpPorts) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a");
  auto b = rig.fabric.bind(rig.vax, IpcsKind::tcp, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value()->phys(), b.value()->phys());
}

TEST(Endpoint, MbxNamesMustBeUniquePerMachine) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::mbx, "box");
  ASSERT_TRUE(a.ok());
  auto b = rig.fabric.bind(rig.vax, IpcsKind::mbx, "box");
  EXPECT_EQ(b.code(), ntcs::Errc::already_exists);
  // Same name on another machine is a different pathname.
  auto c = rig.fabric.bind(rig.sun, IpcsKind::mbx, "box");
  EXPECT_TRUE(c.ok());
}

TEST(Endpoint, ConnectAndExchange) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();

  auto chan = a->connect(b->phys());
  ASSERT_TRUE(chan.ok());

  auto opened = b->recv_for(1s);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().kind, DeliveryKind::opened);
  EXPECT_EQ(opened.value().peer_phys, a->phys());
  EXPECT_EQ(opened.value().chan, chan.value());

  Bytes msg = to_bytes("ping");
  ASSERT_TRUE(a->send(chan.value(), msg).ok());
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().kind, DeliveryKind::data);
  EXPECT_EQ(to_string(got.value().payload), "ping");

  // And back.
  ASSERT_TRUE(b->send(chan.value(), to_bytes("pong")).ok());
  auto back = a->recv_for(1s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(back.value().payload), "pong");
}

TEST(Endpoint, ConnectToUnboundTcpIsRefused) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto r = a->connect("tcp:sun1:9999");
  EXPECT_EQ(r.code(), ntcs::Errc::refused);
}

TEST(Endpoint, ConnectToUnboundMbxIsAddressFault) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::mbx, "a").value();
  auto r = a->connect("mbx:/sun1/nothing");
  EXPECT_EQ(r.code(), ntcs::Errc::address_fault);
}

TEST(Endpoint, CrossIpcsConnectIsUnsupported) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::mbx, "b").value();
  auto r = a->connect(b->phys());
  EXPECT_EQ(r.code(), ntcs::Errc::unsupported);
}

TEST(Endpoint, NoSharedNetworkIsUnreachable) {
  Fabric fabric{1};
  auto na = fabric.add_network("net-a");
  auto nb = fabric.add_network("net-b");
  auto m1 = fabric.add_machine("m1", Arch::vax780, {na});
  auto m2 = fabric.add_machine("m2", Arch::sun3, {nb});
  auto a = fabric.bind(m1, IpcsKind::tcp, "a").value();
  auto b = fabric.bind(m2, IpcsKind::tcp, "b").value();
  auto r = a->connect(b->phys());
  EXPECT_EQ(r.code(), ntcs::Errc::address_fault);
}

TEST(Endpoint, SameMachineNeedsNoNetwork) {
  Fabric fabric{1};
  auto m = fabric.add_machine("lonely", Arch::sun3, {});
  auto a = fabric.bind(m, IpcsKind::tcp, "a").value();
  auto b = fabric.bind(m, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys());
  ASSERT_TRUE(chan.ok());
  ASSERT_TRUE(a->send(chan.value(), to_bytes("x")).ok());
  (void)b->recv_for(1s);  // opened
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(got.value().payload), "x");
}

TEST(Endpoint, MtuEnforced) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::mbx, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::mbx, "b").value();
  auto chan = a->connect(b->phys()).value();
  Bytes big(ipcs_mtu(IpcsKind::mbx) + 1, 0x7);
  EXPECT_EQ(a->send(chan, big).code(), ntcs::Errc::too_big);
}

TEST(Endpoint, CloseChannelNotifiesPeer) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  ASSERT_TRUE(a->close_channel(chan).ok());
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().kind, DeliveryKind::closed);
  // Sending on the dead channel faults.
  EXPECT_EQ(b->send(chan, to_bytes("late")).code(),
            ntcs::Errc::address_fault);
}

TEST(Endpoint, EndpointCloseKillsAllChannels) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto c = rig.fabric.bind(rig.sun, IpcsKind::tcp, "c").value();
  auto ab = a->connect(b->phys()).value();
  auto ac = a->connect(c->phys()).value();
  (void)ab;
  (void)ac;
  a->close();
  EXPECT_TRUE(a->is_closed());
  auto evb = b->recv_for(1s);
  ASSERT_TRUE(evb.ok());
  // b sees opened then closed (order preserved per channel).
  if (evb.value().kind == DeliveryKind::opened) {
    evb = b->recv_for(1s);
    ASSERT_TRUE(evb.ok());
  }
  EXPECT_EQ(evb.value().kind, DeliveryKind::closed);
}

TEST(Endpoint, RecvAfterCloseDrainsThenCloses) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto r = a->recv_for(5ms);
  EXPECT_EQ(r.code(), ntcs::Errc::timeout);
  a->close();
  r = a->recv_for(5ms);
  EXPECT_EQ(r.code(), ntcs::Errc::closed);
}

TEST(Endpoint, ProbeSeesBindings) {
  Rig rig;
  EXPECT_FALSE(rig.fabric.probe("tcp:vax1:5000"));
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  EXPECT_TRUE(rig.fabric.probe(a->phys()));
  a->close();
  EXPECT_FALSE(rig.fabric.probe(a->phys()));
}

TEST(FaultInjection, PartitionBlocksTraffic) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  rig.fabric.set_partitioned(rig.lan, true);
  EXPECT_EQ(a->send(chan, to_bytes("x")).code(), ntcs::Errc::partitioned);
  EXPECT_EQ(a->connect(b->phys()).code(), ntcs::Errc::partitioned);
  rig.fabric.set_partitioned(rig.lan, false);
  EXPECT_TRUE(a->send(chan, to_bytes("x")).ok());
}

TEST(FaultInjection, LossDropsFramesSilently) {
  Rig rig;
  rig.fabric.set_loss(rig.lan, 1.0);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened (control, not lossy)
  EXPECT_TRUE(a->send(chan, to_bytes("gone")).ok());
  EXPECT_EQ(b->recv_for(20ms).code(), ntcs::Errc::timeout);
  EXPECT_EQ(rig.fabric.stats().frames_dropped, 1u);
}

TEST(FaultInjection, KillChannelNotifiesBothEnds) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  ASSERT_TRUE(rig.fabric.kill_channel(chan).ok());
  EXPECT_EQ(a->recv_for(1s).value().kind, DeliveryKind::closed);
  EXPECT_EQ(b->recv_for(1s).value().kind, DeliveryKind::closed);
  EXPECT_EQ(rig.fabric.kill_channel(chan).code(), ntcs::Errc::not_found);
}

TEST(Latency, DelaysDelivery) {
  Rig rig;
  rig.fabric.set_latency(rig.lan, 20ms, 20ms);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  const auto t0 = std::chrono::steady_clock::now();
  auto chan = a->connect(b->phys()).value();
  ASSERT_TRUE(a->send(chan, to_bytes("slow")).ok());
  (void)b->recv_for(1s);  // opened (delayed too)
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 20ms);
}

TEST(Latency, FifoPreservedPerChannel) {
  Rig rig;
  rig.fabric.set_latency(rig.lan, 0ms, 5ms);  // jitter
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(a->send(chan, to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto got = b->recv_for(1s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(to_string(got.value().payload), std::to_string(i));
  }
}

TEST(Latency, BandwidthSerialisesFrames) {
  // 1 MB/s link: a 10 KiB frame takes ~10 ms on the wire, and back-to-back
  // frames queue (~20 ms for two).
  Rig rig;
  rig.fabric.set_bandwidth(rig.lan, 1'000'000);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  Bytes frame(10 * 1024, 0x1);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(chan, frame).ok());
  ASSERT_TRUE(a->send(chan, frame).ok());
  ASSERT_TRUE(b->recv_for(2s).ok());
  const auto first = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(b->recv_for(2s).ok());
  const auto second = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(first, 9ms);
  EXPECT_GE(second, 19ms);  // queued behind the first
}

TEST(Clocks, SkewIsVisible) {
  Rig rig;
  rig.fabric.set_clock_offset(rig.vax, 1h);
  const auto vax_now = rig.fabric.machine_now(rig.vax);
  const auto sun_now = rig.fabric.machine_now(rig.sun);
  EXPECT_GT(vax_now - sun_now, 59min);
}

TEST(Stats, CountsTraffic) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  ASSERT_TRUE(a->send(chan, to_bytes("12345")).ok());
  auto s = rig.fabric.stats();
  EXPECT_EQ(s.connects_ok, 1u);
  EXPECT_EQ(s.frames_sent, 1u);
  EXPECT_EQ(s.bytes_sent, 5u);
}

}  // namespace
}  // namespace ntcs::simnet
