// Unit tests for the simulated fabric (S2): topology, endpoints, channels,
// latency, loss, partitions, clocks, probes.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "convert/machine.h"
#include "simnet/fabric.h"
#include "simnet/phys.h"

namespace ntcs::simnet {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

struct Rig {
  Fabric fabric{1};
  NetworkId lan;
  MachineId vax;
  MachineId sun;

  Rig() {
    lan = fabric.add_network("lan-a");
    vax = fabric.add_machine("vax1", Arch::vax780, {lan});
    sun = fabric.add_machine("sun1", Arch::sun3, {lan});
  }
};

TEST(PhysFormat, TcpRoundTrip) {
  const std::string addr = format_tcp_addr("vax1", 5001);
  auto p = parse_phys(addr);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, IpcsKind::tcp);
  EXPECT_EQ(p->machine, "vax1");
  EXPECT_EQ(p->local, "5001");
}

TEST(PhysFormat, MbxRoundTrip) {
  const std::string addr = format_mbx_addr("apollo1", "server-mbx");
  auto p = parse_phys(addr);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, IpcsKind::mbx);
  EXPECT_EQ(p->machine, "apollo1");
  EXPECT_EQ(p->local, "server-mbx");
}

TEST(PhysFormat, RejectsGarbage) {
  EXPECT_FALSE(parse_phys("").has_value());
  EXPECT_FALSE(parse_phys("bogus").has_value());
  EXPECT_FALSE(parse_phys("tcp:").has_value());
  EXPECT_FALSE(parse_phys("tcp:host:notaport").has_value());
  EXPECT_FALSE(parse_phys("mbx:/nopath").has_value());
  EXPECT_FALSE(parse_phys("mbx://x").has_value());
}

TEST(PhysFormat, MtuDiffersByKind) {
  EXPECT_GT(ipcs_mtu(IpcsKind::tcp), ipcs_mtu(IpcsKind::mbx));
}

TEST(FabricTopology, NamesResolve) {
  Rig rig;
  EXPECT_EQ(rig.fabric.machine_by_name("vax1"), rig.vax);
  EXPECT_EQ(rig.fabric.network_by_name("lan-a"), rig.lan);
  EXPECT_FALSE(rig.fabric.machine_by_name("nope").has_value());
  EXPECT_EQ(rig.fabric.machine_arch(rig.vax), Arch::vax780);
  EXPECT_EQ(rig.fabric.machine_count(), 2u);
  EXPECT_EQ(rig.fabric.network_count(), 1u);
}

TEST(FabricTopology, AttachIsIdempotent) {
  Rig rig;
  rig.fabric.attach_machine(rig.vax, rig.lan);
  EXPECT_EQ(rig.fabric.machine_networks(rig.vax).size(), 1u);
}

TEST(Endpoint, BindAssignsDistinctTcpPorts) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a");
  auto b = rig.fabric.bind(rig.vax, IpcsKind::tcp, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value()->phys(), b.value()->phys());
}

TEST(Endpoint, MbxNamesMustBeUniquePerMachine) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::mbx, "box");
  ASSERT_TRUE(a.ok());
  auto b = rig.fabric.bind(rig.vax, IpcsKind::mbx, "box");
  EXPECT_EQ(b.code(), ntcs::Errc::already_exists);
  // Same name on another machine is a different pathname.
  auto c = rig.fabric.bind(rig.sun, IpcsKind::mbx, "box");
  EXPECT_TRUE(c.ok());
}

TEST(Endpoint, ConnectAndExchange) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();

  auto chan = a->connect(b->phys());
  ASSERT_TRUE(chan.ok());

  auto opened = b->recv_for(1s);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().kind, DeliveryKind::opened);
  EXPECT_EQ(opened.value().peer_phys, a->phys());
  EXPECT_EQ(opened.value().chan, chan.value());

  Bytes msg = to_bytes("ping");
  ASSERT_TRUE(a->send(chan.value(), msg).ok());
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().kind, DeliveryKind::data);
  EXPECT_EQ(to_string(got.value().payload), "ping");

  // And back.
  ASSERT_TRUE(b->send(chan.value(), to_bytes("pong")).ok());
  auto back = a->recv_for(1s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(back.value().payload), "pong");
}

TEST(Endpoint, ConnectToUnboundTcpIsRefused) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto r = a->connect("tcp:sun1:9999");
  EXPECT_EQ(r.code(), ntcs::Errc::refused);
}

TEST(Endpoint, ConnectToUnboundMbxIsAddressFault) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::mbx, "a").value();
  auto r = a->connect("mbx:/sun1/nothing");
  EXPECT_EQ(r.code(), ntcs::Errc::address_fault);
}

TEST(Endpoint, CrossIpcsConnectIsUnsupported) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::mbx, "b").value();
  auto r = a->connect(b->phys());
  EXPECT_EQ(r.code(), ntcs::Errc::unsupported);
}

TEST(Endpoint, NoSharedNetworkIsUnreachable) {
  Fabric fabric{1};
  auto na = fabric.add_network("net-a");
  auto nb = fabric.add_network("net-b");
  auto m1 = fabric.add_machine("m1", Arch::vax780, {na});
  auto m2 = fabric.add_machine("m2", Arch::sun3, {nb});
  auto a = fabric.bind(m1, IpcsKind::tcp, "a").value();
  auto b = fabric.bind(m2, IpcsKind::tcp, "b").value();
  auto r = a->connect(b->phys());
  EXPECT_EQ(r.code(), ntcs::Errc::address_fault);
}

TEST(Endpoint, SameMachineNeedsNoNetwork) {
  Fabric fabric{1};
  auto m = fabric.add_machine("lonely", Arch::sun3, {});
  auto a = fabric.bind(m, IpcsKind::tcp, "a").value();
  auto b = fabric.bind(m, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys());
  ASSERT_TRUE(chan.ok());
  ASSERT_TRUE(a->send(chan.value(), to_bytes("x")).ok());
  (void)b->recv_for(1s);  // opened
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(got.value().payload), "x");
}

TEST(Endpoint, MtuEnforced) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::mbx, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::mbx, "b").value();
  auto chan = a->connect(b->phys()).value();
  Bytes big(ipcs_mtu(IpcsKind::mbx) + 1, 0x7);
  EXPECT_EQ(a->send(chan, big).code(), ntcs::Errc::too_big);
}

TEST(Endpoint, CloseChannelNotifiesPeer) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  ASSERT_TRUE(a->close_channel(chan).ok());
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().kind, DeliveryKind::closed);
  // Sending on the dead channel faults.
  EXPECT_EQ(b->send(chan, to_bytes("late")).code(),
            ntcs::Errc::address_fault);
}

TEST(Endpoint, EndpointCloseKillsAllChannels) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto c = rig.fabric.bind(rig.sun, IpcsKind::tcp, "c").value();
  auto ab = a->connect(b->phys()).value();
  auto ac = a->connect(c->phys()).value();
  (void)ab;
  (void)ac;
  a->close();
  EXPECT_TRUE(a->is_closed());
  auto evb = b->recv_for(1s);
  ASSERT_TRUE(evb.ok());
  // b sees opened then closed (order preserved per channel).
  if (evb.value().kind == DeliveryKind::opened) {
    evb = b->recv_for(1s);
    ASSERT_TRUE(evb.ok());
  }
  EXPECT_EQ(evb.value().kind, DeliveryKind::closed);
}

TEST(Endpoint, RecvAfterCloseDrainsThenCloses) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto r = a->recv_for(5ms);
  EXPECT_EQ(r.code(), ntcs::Errc::timeout);
  a->close();
  r = a->recv_for(5ms);
  EXPECT_EQ(r.code(), ntcs::Errc::closed);
}

TEST(Endpoint, ProbeSeesBindings) {
  Rig rig;
  EXPECT_FALSE(rig.fabric.probe("tcp:vax1:5000"));
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  EXPECT_TRUE(rig.fabric.probe(a->phys()));
  a->close();
  EXPECT_FALSE(rig.fabric.probe(a->phys()));
}

TEST(FaultInjection, PartitionBlocksTraffic) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  rig.fabric.set_partitioned(rig.lan, true);
  EXPECT_EQ(a->send(chan, to_bytes("x")).code(), ntcs::Errc::partitioned);
  EXPECT_EQ(a->connect(b->phys()).code(), ntcs::Errc::partitioned);
  rig.fabric.set_partitioned(rig.lan, false);
  EXPECT_TRUE(a->send(chan, to_bytes("x")).ok());
}

TEST(FaultInjection, LossDropsFramesSilently) {
  Rig rig;
  rig.fabric.set_loss(rig.lan, 1.0);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened (control, not lossy)
  EXPECT_TRUE(a->send(chan, to_bytes("gone")).ok());
  EXPECT_EQ(b->recv_for(20ms).code(), ntcs::Errc::timeout);
  EXPECT_EQ(rig.fabric.stats().frames_dropped, 1u);
}

TEST(FaultInjection, KillChannelNotifiesBothEnds) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  ASSERT_TRUE(rig.fabric.kill_channel(chan).ok());
  EXPECT_EQ(a->recv_for(1s).value().kind, DeliveryKind::closed);
  EXPECT_EQ(b->recv_for(1s).value().kind, DeliveryKind::closed);
  EXPECT_EQ(rig.fabric.kill_channel(chan).code(), ntcs::Errc::not_found);
}

TEST(Latency, DelaysDelivery) {
  Rig rig;
  rig.fabric.set_latency(rig.lan, 20ms, 20ms);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  const auto t0 = std::chrono::steady_clock::now();
  auto chan = a->connect(b->phys()).value();
  ASSERT_TRUE(a->send(chan, to_bytes("slow")).ok());
  (void)b->recv_for(1s);  // opened (delayed too)
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 20ms);
}

TEST(Latency, FifoPreservedPerChannel) {
  Rig rig;
  rig.fabric.set_latency(rig.lan, 0ms, 5ms);  // jitter
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(a->send(chan, to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto got = b->recv_for(1s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(to_string(got.value().payload), std::to_string(i));
  }
}

TEST(Latency, BandwidthSerialisesFrames) {
  // 1 MB/s link: a 10 KiB frame takes ~10 ms on the wire, and back-to-back
  // frames queue (~20 ms for two).
  Rig rig;
  rig.fabric.set_bandwidth(rig.lan, 1'000'000);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  Bytes frame(10 * 1024, 0x1);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(chan, frame).ok());
  ASSERT_TRUE(a->send(chan, frame).ok());
  ASSERT_TRUE(b->recv_for(2s).ok());
  const auto first = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(b->recv_for(2s).ok());
  const auto second = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(first, 9ms);
  EXPECT_GE(second, 19ms);  // queued behind the first
}

TEST(Clocks, SkewIsVisible) {
  Rig rig;
  rig.fabric.set_clock_offset(rig.vax, 1h);
  const auto vax_now = rig.fabric.machine_now(rig.vax);
  const auto sun_now = rig.fabric.machine_now(rig.sun);
  EXPECT_GT(vax_now - sun_now, 59min);
}

TEST(Stats, CountsTraffic) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  ASSERT_TRUE(a->send(chan, to_bytes("12345")).ok());
  auto s = rig.fabric.stats();
  EXPECT_EQ(s.connects_ok, 1u);
  EXPECT_EQ(s.frames_sent, 1u);
  EXPECT_EQ(s.bytes_sent, 5u);
}

TEST(FabricTopology, NameLookupsReturnDurableValues) {
  // machine_name/network_name return copies: the values must stay intact
  // even when topology growth reallocates the underlying vectors.
  Rig rig;
  const std::string m = rig.fabric.machine_name(rig.vax);
  const std::string n = rig.fabric.network_name(rig.lan);
  for (int i = 0; i < 200; ++i) {
    rig.fabric.add_machine("extra-" + std::to_string(i), Arch::apollo_dn330,
                           {rig.lan});
    rig.fabric.add_network("net-" + std::to_string(i));
  }
  EXPECT_EQ(m, "vax1");
  EXPECT_EQ(n, "lan-a");
  EXPECT_EQ(rig.fabric.machine_name(rig.vax), "vax1");
  EXPECT_EQ(rig.fabric.network_name(rig.lan), "lan-a");
}

TEST(FabricTopology, NameLookupRacesTopologyGrowth) {
  // Regression for the dangling-reference bug: under TSan this test is the
  // tripwire — reading a returned reference into machines_ while
  // add_machine reallocates the vector was a use-after-free.
  Rig rig;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      if (rig.fabric.machine_name(rig.vax) != "vax1") break;
      if (rig.fabric.network_name(rig.lan) != "lan-a") break;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    rig.fabric.add_machine("m-" + std::to_string(i), Arch::sun3, {rig.lan});
    if (i % 4 == 0) rig.fabric.add_network("n-" + std::to_string(i));
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(rig.fabric.machine_name(rig.vax), "vax1");
}

TEST(FaultInjection, KillDuringBurstCloseDoesNotOvertake) {
  // Regression for kill_channel enqueuing `closed` at `now`: with frames
  // still in flight on a slow link, the close must queue behind them, not
  // overtake (the ordering contract of close_channel_impl).
  Rig rig;
  rig.fabric.set_latency(rig.lan, 5ms, 10ms);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  constexpr int kBurst = 30;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(a->send(chan, to_bytes(std::to_string(i))).ok());
  }
  ASSERT_TRUE(rig.fabric.kill_channel(chan).ok());
  int data_seen = 0;
  bool closed_seen = false;
  for (;;) {
    auto got = b->recv_for(1s);
    if (!got.ok()) break;
    if (got.value().kind == DeliveryKind::closed) {
      closed_seen = true;
      break;
    }
    ASSERT_FALSE(closed_seen);
    EXPECT_EQ(to_string(got.value().payload), std::to_string(data_seen));
    ++data_seen;
  }
  EXPECT_TRUE(closed_seen);
  EXPECT_EQ(data_seen, kBurst);  // every in-flight frame beat the close
}

TEST(FaultInjection, ChannelCountTracksLifecycles) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  EXPECT_EQ(rig.fabric.channel_count(), 0u);
  auto c1 = a->connect(b->phys()).value();
  auto c2 = a->connect(b->phys()).value();
  EXPECT_EQ(rig.fabric.channel_count(), 2u);
  ASSERT_TRUE(a->close_channel(c1).ok());
  EXPECT_EQ(rig.fabric.channel_count(), 1u);
  ASSERT_TRUE(rig.fabric.kill_channel(c2).ok());
  EXPECT_EQ(rig.fabric.channel_count(), 0u);
}

TEST(FaultPlan, DuplicationDeliversCopies) {
  Rig rig;
  FaultPlan plan;
  plan.dup_prob = 1.0;
  rig.fabric.set_fault_plan(rig.lan, plan);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  ASSERT_TRUE(a->send(chan, to_bytes("echo")).ok());
  auto first = b->recv_for(1s);
  auto second = b->recv_for(1s);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().payload, second.value().payload);
  const auto s = rig.fabric.stats();
  EXPECT_EQ(s.frames_duplicated, 1u);
  rig.fabric.clear_faults();
  ASSERT_TRUE(a->send(chan, to_bytes("solo")).ok());
  ASSERT_TRUE(b->recv_for(1s).ok());
  EXPECT_EQ(b->pending(), 0u);  // no trailing copy once cleared
}

TEST(FaultPlan, ReorderingLetsLaterFramesOvertake) {
  Rig rig;
  FaultPlan plan;
  plan.reorder_prob = 0.5;
  plan.reorder_window = 2ms;
  rig.fabric.set_fault_plan(rig.lan, plan);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(a->send(chan, to_bytes(std::to_string(i))).ok());
  }
  std::vector<int> order;
  for (int i = 0; i < kFrames; ++i) {
    auto got = b->recv_for(1s);
    ASSERT_TRUE(got.ok());
    order.push_back(std::stoi(to_string(got.value().payload)));
  }
  // Everything arrives exactly once...
  std::set<int> uniq(order.begin(), order.end());
  EXPECT_EQ(uniq.size(), order.size());
  // ...but not in send order, and the fabric counted what it did.
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  EXPECT_GT(rig.fabric.stats().frames_reordered, 0u);
}

TEST(FaultPlan, FlappingLinkDropsAndRecovers) {
  Rig rig;
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  FaultPlan plan;
  plan.flap_period = 40ms;
  plan.flap_down = 20ms;  // cycle starts down
  rig.fabric.set_fault_plan(rig.lan, plan);
  // Down phase: connects are refused with the transient face of failure,
  // data frames vanish silently.
  EXPECT_EQ(a->connect(b->phys()).code(), ntcs::Errc::timeout);
  ASSERT_TRUE(a->send(chan, to_bytes("lost")).ok());
  const auto down = rig.fabric.stats();
  EXPECT_EQ(down.flap_dropped, 1u);
  EXPECT_GE(down.link_flaps, 1u);
  // Up phase: traffic flows again.
  std::this_thread::sleep_for(25ms);
  EXPECT_TRUE(a->connect(b->phys()).ok());
  (void)b->recv_for(1s);  // opened (the up-phase probe connect)
  ASSERT_TRUE(a->send(chan, to_bytes("through")).ok());
  auto got = b->recv_for(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(got.value().payload), "through");
}

TEST(FaultPlan, CorruptionFlipsBytesPerDirection) {
  Rig rig;
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  plan.corrupt_to_b = true;
  plan.corrupt_to_a = false;
  rig.fabric.set_fault_plan(rig.lan, plan);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  const Bytes msg = to_bytes("pristine");
  ASSERT_TRUE(a->send(chan, msg).ok());
  auto to_b_got = b->recv_for(1s);
  ASSERT_TRUE(to_b_got.ok());
  EXPECT_NE(to_b_got.value().payload, msg);  // a -> b corrupted
  EXPECT_EQ(to_b_got.value().payload.size(), msg.size());
  ASSERT_TRUE(b->send(chan, msg).ok());
  auto to_a_got = a->recv_for(1s);
  ASSERT_TRUE(to_a_got.ok());
  EXPECT_EQ(to_a_got.value().payload, msg);  // b -> a untouched
  EXPECT_EQ(rig.fabric.stats().frames_corrupted, 1u);
}

TEST(FaultPlan, JitterDelaysButPreservesFifo) {
  Rig rig;
  FaultPlan plan;
  plan.jitter = 3ms;
  rig.fabric.set_fault_plan(rig.lan, plan);
  auto a = rig.fabric.bind(rig.vax, IpcsKind::tcp, "a").value();
  auto b = rig.fabric.bind(rig.sun, IpcsKind::tcp, "b").value();
  auto chan = a->connect(b->phys()).value();
  (void)b->recv_for(1s);  // opened
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(a->send(chan, to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < 40; ++i) {
    auto got = b->recv_for(1s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(to_string(got.value().payload), std::to_string(i));
  }
}

TEST(FaultPlan, DeterministicForFixedSeed) {
  // Two fabrics with the same seed and workload inject identical faults.
  auto run = [] {
    Fabric fabric{77};
    auto lan = fabric.add_network("lan");
    auto m1 = fabric.add_machine("m1", Arch::vax780, {lan});
    auto m2 = fabric.add_machine("m2", Arch::sun3, {lan});
    FaultPlan plan;
    plan.dup_prob = 0.3;
    plan.reorder_prob = 0.3;
    plan.corrupt_prob = 0.1;
    fabric.set_fault_plan(lan, plan);
    auto a = fabric.bind(m1, IpcsKind::tcp, "a").value();
    auto b = fabric.bind(m2, IpcsKind::tcp, "b").value();
    auto chan = a->connect(b->phys()).value();
    (void)b->recv_for(1s);
    for (int i = 0; i < 100; ++i) {
      (void)a->send(chan, to_bytes(std::to_string(i)));
    }
    const auto s = fabric.stats();
    return std::tuple{s.frames_duplicated, s.frames_reordered,
                      s.frames_corrupted};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ntcs::simnet
