// Tests for the static naming-service implementation (S9 alternative):
// the NSP isolation claim of §3 — the whole Nucleus runs with a different
// naming service and NO Name Server module anywhere.
#include <gtest/gtest.h>

#include "core/nsp/static_resolver.h"
#include "core/testbed.h"
#include "simnet/backend.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

TEST(StaticNaming, TableBasics) {
  StaticNameService svc;
  svc.add("alpha", UAdd::permanent(2001), PhysAddr{"tcp:m:1"}, "lan");
  EXPECT_EQ(svc.size(), 1u);
  EXPECT_EQ(svc.lookup("alpha").value(), UAdd::permanent(2001));
  EXPECT_EQ(svc.lookup("beta").code(), Errc::not_found);
  auto dest = svc.resolve(UAdd::permanent(2001));
  ASSERT_TRUE(dest.ok());
  EXPECT_EQ(dest.value().phys.blob, "tcp:m:1");
  EXPECT_EQ(dest.value().net, "lan");
  EXPECT_EQ(svc.resolve(UAdd::permanent(9)).code(), Errc::not_found);
  EXPECT_EQ(svc.forward(UAdd::permanent(2001)).code(), Errc::not_found);
}

TEST(StaticNaming, FullSystemWithoutNameServer) {
  // No NameServer module exists anywhere in this system. Identities and
  // the name table are configured by the deployer.
  simnet::Fabric fabric{1};
  auto lan = fabric.add_network("lan");
  auto vax = fabric.add_machine("vax1", Arch::vax780, {lan});
  auto sun = fabric.add_machine("sun1", Arch::sun3, {lan});

  NodeConfig cfg_a;
  cfg_a.name = "a";
  cfg_a.backend = std::make_shared<simnet::SimnetBackend>(
      fabric, vax, simnet::IpcsKind::tcp);
  cfg_a.net = "lan";
  Node a(std::move(cfg_a));
  ASSERT_TRUE(a.start().ok());
  a.identity().set_uadd(UAdd::permanent(2001));

  NodeConfig cfg_b;
  cfg_b.name = "b";
  cfg_b.backend = std::make_shared<simnet::SimnetBackend>(
      fabric, sun, simnet::IpcsKind::tcp);
  cfg_b.net = "lan";
  Node b(std::move(cfg_b));
  ASSERT_TRUE(b.start().ok());
  b.identity().set_uadd(UAdd::permanent(2002));

  StaticNameService svc;
  svc.add("a", UAdd::permanent(2001), a.phys(), "lan");
  svc.add("b", UAdd::permanent(2002), b.phys(), "lan");
  use_static_naming(a, svc);
  use_static_naming(b, svc);

  // Name resolution is a local call; communication runs the full stack.
  auto b_addr = svc.lookup("b").value();
  ASSERT_TRUE(a.commod().send(b_addr, to_bytes("statically named")).ok());
  auto in = b.commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "statically named");
  EXPECT_EQ(in.value().src, UAdd::permanent(2001));
  // Heterogeneous conversion still applies (it is below naming).
  EXPECT_EQ(in.value().mode, convert::XferMode::image);  // raw bytes

  a.stop();
  b.stop();
}

TEST(StaticNaming, CrossNetworkViaStaticGatewayRecord) {
  simnet::Fabric fabric{1};
  auto na = fabric.add_network("net-a");
  auto nb = fabric.add_network("net-b");
  auto m1 = fabric.add_machine("m1", Arch::vax780, {na});
  auto gm = fabric.add_machine("gm", Arch::apollo_dn330, {na, nb});
  auto m2 = fabric.add_machine("m2", Arch::sun3, {nb});

  // A gateway still works — its record simply comes from the static table.
  auto gw_backend = [&] {
    return std::make_shared<simnet::SimnetBackend>(fabric, gm,
                                                   simnet::IpcsKind::tcp);
  };
  Gateway gw("gw", {{gw_backend(), "net-a"}, {gw_backend(), "net-b"}},
             UAdd::permanent(2));
  ASSERT_TRUE(gw.start().ok());

  NodeConfig cfg_a;
  cfg_a.name = "a";
  cfg_a.backend = std::make_shared<simnet::SimnetBackend>(
      fabric, m1, simnet::IpcsKind::tcp);
  cfg_a.net = "net-a";
  Node a(std::move(cfg_a));
  ASSERT_TRUE(a.start().ok());
  a.identity().set_uadd(UAdd::permanent(2001));

  NodeConfig cfg_b;
  cfg_b.name = "b";
  cfg_b.backend = std::make_shared<simnet::SimnetBackend>(
      fabric, m2, simnet::IpcsKind::tcp);
  cfg_b.net = "net-b";
  Node b(std::move(cfg_b));
  ASSERT_TRUE(b.start().ok());
  b.identity().set_uadd(UAdd::permanent(2002));

  StaticNameService svc;
  svc.add("a", UAdd::permanent(2001), a.phys(), "net-a");
  svc.add("b", UAdd::permanent(2002), b.phys(), "net-b");
  svc.add_gateway(gw.record());
  use_static_naming(a, svc);
  use_static_naming(b, svc);

  ASSERT_TRUE(a.commod().send(UAdd::permanent(2002),
                              to_bytes("static internetting")).ok());
  auto in = b.commod().receive(3s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "static internetting");

  a.stop();
  b.stop();
  gw.stop();
}

TEST(StaticNaming, NoForwardingMeansCleanFailureOnDeath) {
  simnet::Fabric fabric{1};
  auto lan = fabric.add_network("lan");
  auto m = fabric.add_machine("m", Arch::vax780, {lan});
  NodeConfig cfg_a;
  cfg_a.name = "a";
  cfg_a.backend = std::make_shared<simnet::SimnetBackend>(
      fabric, m, simnet::IpcsKind::tcp);
  cfg_a.net = "lan";
  NodeConfig cfg_b = cfg_a;
  Node a(std::move(cfg_a));
  ASSERT_TRUE(a.start().ok());
  a.identity().set_uadd(UAdd::permanent(2001));
  cfg_b.name = "b";
  auto b = std::make_unique<Node>(std::move(cfg_b));
  ASSERT_TRUE(b->start().ok());
  b->identity().set_uadd(UAdd::permanent(2002));
  StaticNameService svc;
  svc.add("a", UAdd::permanent(2001), a.phys(), "lan");
  svc.add("b", UAdd::permanent(2002), b->phys(), "lan");
  use_static_naming(a, svc);
  use_static_naming(*b, svc);
  ASSERT_TRUE(a.commod().send(UAdd::permanent(2002), to_bytes("1")).ok());
  ASSERT_TRUE(b->commod().receive(2s).ok());
  b->stop();
  b.reset();
  auto st = a.commod().send(UAdd::permanent(2002), to_bytes("2"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Errc::not_found);  // forward() had nothing to offer
  a.stop();
}

}  // namespace
}  // namespace ntcs::core
