// Stress tests: many modules, concurrent crossbar traffic, churn, and
// registration fan-out — the load shapes that surface races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/testbed.h"
#include "drts/process_control.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

TEST(Stress, FiftyModuleRegistrationFanOut) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());

  constexpr int kModules = 50;
  std::vector<std::unique_ptr<Node>> nodes(kModules);
  std::vector<std::jthread> spawners;
  std::atomic<int> ok{0};
  for (int i = 0; i < kModules; ++i) {
    spawners.emplace_back([&, i] {
      auto node = tb.spawn_module("fan-" + std::to_string(i),
                                  i % 2 == 0 ? "m1" : "m2", "lan");
      if (node.ok()) {
        nodes[static_cast<std::size_t>(i)] = std::move(node.value());
        ok.fetch_add(1);
      }
    });
  }
  spawners.clear();  // join
  EXPECT_EQ(ok.load(), kModules);
  // All are locatable and have distinct UAdds.
  std::set<UAdd> uadds;
  for (const auto& node : nodes) {
    ASSERT_NE(node, nullptr);
    uadds.insert(node->identity().uadd());
  }
  EXPECT_EQ(uadds.size(), static_cast<std::size_t>(kModules));
  for (auto& node : nodes) node->stop();
}

TEST(Stress, CrossbarTrafficWithJitter) {
  Testbed tb;
  simnet::NetConfig jitter;
  jitter.latency_min = std::chrono::microseconds(10);
  jitter.latency_max = std::chrono::microseconds(200);
  tb.net("lan", jitter);
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  tb.machine("m3", Arch::apollo_dn330, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());

  constexpr int kModules = 6;
  constexpr int kMessagesEach = 40;
  const char* machines[] = {"m1", "m2", "m3"};
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < kModules; ++i) {
    nodes.push_back(tb.spawn_module("x-" + std::to_string(i),
                                    machines[i % 3], "lan")
                        .value());
  }
  std::vector<UAdd> addrs;
  for (int i = 0; i < kModules; ++i) {
    addrs.push_back(
        nodes[0]->commod().locate("x-" + std::to_string(i)).value());
  }
  // Every module echoes requests; every module fires requests at everyone.
  std::vector<std::jthread> echoes;
  for (auto& node : nodes) {
    echoes.emplace_back([&node](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = node->commod().receive(50ms);
        if (in.ok() && in.value().is_request) {
          (void)node->commod().reply(in.value().reply_ctx,
                                     in.value().payload);
        }
      }
    });
  }
  std::atomic<int> answered{0};
  std::vector<std::jthread> drivers;
  for (int i = 0; i < kModules; ++i) {
    drivers.emplace_back([&, i] {
      Rng rng(static_cast<std::uint64_t>(i) + 99);
      for (int m = 0; m < kMessagesEach; ++m) {
        const int target = static_cast<int>(rng.next_below(kModules));
        const std::string body = std::to_string(i * 1000 + m);
        auto reply =
            nodes[static_cast<std::size_t>(i)]->commod().request(
                addrs[static_cast<std::size_t>(target)], to_bytes(body), 10s);
        if (reply.ok() && to_string(reply.value().payload) == body) {
          answered.fetch_add(1);
        }
      }
    });
  }
  drivers.clear();  // join
  EXPECT_EQ(answered.load(), kModules * kMessagesEach);
  echoes.clear();
  for (auto& node : nodes) node->stop();
}

TEST(Stress, ChurnSurvivesSustainedTraffic) {
  // Relocation churn + traffic + a lossy blip, all at once.
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  tb.machine("m3", Arch::apollo_dn330, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  ntcs::drts::ProcessController pc(tb);
  ASSERT_TRUE(pc.spawn("svc-a", "m2", "lan", {},
                       ntcs::drts::make_echo_service())
                  .ok());
  ASSERT_TRUE(pc.spawn("svc-b", "m3", "lan", {},
                       ntcs::drts::make_echo_service())
                  .ok());
  auto client = tb.spawn_module("driver", "m1", "lan").value();
  auto a_addr = client->commod().locate("svc-a").value();
  auto b_addr = client->commod().locate("svc-b").value();

  // Bounded churn burst concurrent with the traffic (see property_test:
  // unbounded churn can outpace recovery on a loaded machine).
  std::jthread churn([&] {
    const char* spots[] = {"m1", "m2", "m3"};
    for (int i = 0; i < 40; ++i) {
      (void)pc.relocate(i % 2 == 0 ? "svc-a" : "svc-b", spots[i % 3], "lan");
      std::this_thread::sleep_for(15ms);
    }
  });
  int delivered = 0;
  constexpr int kTotal = 60;
  for (int i = 0; i < kTotal; ++i) {
    const UAdd dst = i % 2 == 0 ? a_addr : b_addr;
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto reply = client->commod().request(dst, to_bytes("m"), 2s);
      if (reply.ok()) {
        ++delivered;
        break;
      }
      std::this_thread::sleep_for(10ms);
    }
  }
  churn.join();
  EXPECT_EQ(delivered, kTotal);
  client->stop();
}

TEST(Stress, LargeMessagesConcurrently) {
  Testbed tb;
  tb.net("lan");
  tb.machine("m1", Arch::vax780, {"lan"});
  tb.machine("m2", Arch::sun3, {"lan"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan").value();
  auto b = tb.spawn_module("b", "m2", "lan").value();
  auto addr = a->commod().locate("b").value();

  constexpr int kThreads = 4;
  constexpr int kEach = 10;
  std::atomic<int> sent{0};
  std::vector<std::jthread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 7);
      for (int i = 0; i < kEach; ++i) {
        Bytes msg(200 * 1024);
        for (auto& byte : msg) byte = static_cast<std::uint8_t>(rng.next());
        if (a->commod().send(addr, msg).ok()) sent.fetch_add(1);
      }
    });
  }
  senders.clear();  // join
  EXPECT_EQ(sent.load(), kThreads * kEach);
  int received = 0;
  for (int i = 0; i < kThreads * kEach; ++i) {
    auto in = b->commod().receive(5s);
    if (!in.ok()) break;
    EXPECT_EQ(in.value().payload.size(), 200u * 1024);
    ++received;
  }
  EXPECT_EQ(received, kThreads * kEach);
  a->stop();
  b->stop();
}

}  // namespace
}  // namespace ntcs::core
