// Distributed-tracing tests (ctest label `trace`): the trace context on the
// LCM wire, the lock-free span ring, and the end-to-end property the whole
// subsystem exists for — a request crossing gateway chains leaves a complete
// root -> per-hop -> deliver -> reply -> complete span chain that can be
// harvested from the DRTS monitor over the NTCS itself (§6.1 recursion),
// merged, and rendered as one Chrome trace-event timeline. The chaos case
// runs the same check under fault injection with pipelined requests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>

#include "common/trace.h"
#include "common/trace_export.h"
#include "core/testbed.h"
#include "core/wire/frames.h"
#include "drts/monitor.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

/// Fabric seed for the rigs below: NTCS_FABRIC_SEED if set, else 1 (the
/// scripts/verify.sh seed sweep overrides it, same as the chaos suite).
std::uint64_t fabric_seed() {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 1;
}

/// RAII sampling window: empties the process buffer, samples every root for
/// the scope, and always restores the off default (other suites in this
/// binary — and the tier-1 invariant — depend on tracing staying off).
struct SamplingScope {
  explicit SamplingScope(trace::SampleMode mode = trace::SampleMode::always,
                         std::uint32_t n = 1) {
    trace::clear_spans();
    trace::set_sampling(mode, n);
  }
  ~SamplingScope() { trace::set_sampling(trace::SampleMode::off); }
};

/// Spans of `all` belonging to one trace, grouped as op -> spans.
std::map<std::string, std::vector<trace::Span>> by_op(
    const std::vector<trace::Span>& all, std::uint64_t hi, std::uint64_t lo) {
  std::map<std::string, std::vector<trace::Span>> out;
  for (const trace::Span& s : all) {
    if (s.trace_hi == hi && s.trace_lo == lo) out[s.op].push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------- the wire

TEST(TraceWire, ContextRoundTripAndPeek) {
  const Bytes payload = to_bytes("payload-bytes");

  // Traced header: the three words survive encode/decode and the
  // fixed-offset peek agrees with the full decode.
  wire::LcmHeader h;
  h.kind = wire::LcmKind::request;
  h.flags = wire::kLcmFlagTraced;
  h.req_id = 77;
  h.trace_hi = 0x1122334455667788ull;
  h.trace_lo = 0x99AABBCCDDEEFF00ull;
  h.trace_parent = 0x0F0E0D0C0B0A0908ull;
  const Bytes msg = wire::encode_lcm(h, payload);

  auto dec = wire::decode_lcm(msg);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().header.flags & wire::kLcmFlagTraced,
            wire::kLcmFlagTraced);
  EXPECT_EQ(dec.value().header.trace_hi, h.trace_hi);
  EXPECT_EQ(dec.value().header.trace_lo, h.trace_lo);
  EXPECT_EQ(dec.value().header.trace_parent, h.trace_parent);
  EXPECT_EQ(dec.value().payload, payload);

  auto peek = wire::peek_lcm_trace(msg);
  ASSERT_TRUE(peek.has_value());
  EXPECT_EQ(peek->hi, h.trace_hi);
  EXPECT_EQ(peek->lo, h.trace_lo);
  EXPECT_EQ(peek->parent, h.trace_parent);

  // The same peek through the full ND nesting: ND payload -> IP data
  // envelope -> LCM message (the gateway-relay attribution path).
  const Bytes nd = wire::encode_nd_payload(wire::encode_ip_data(42, msg));
  auto nd_peek = wire::peek_nd_trace(nd);
  ASSERT_TRUE(nd_peek.has_value());
  EXPECT_EQ(nd_peek->hi, h.trace_hi);
  EXPECT_EQ(nd_peek->lo, h.trace_lo);
  EXPECT_EQ(nd_peek->parent, h.trace_parent);

  // Version tolerance: an untraced header carries no trace words, decodes
  // to zeros, and both peeks answer nullopt.
  wire::LcmHeader plain;
  plain.kind = wire::LcmKind::data;
  const Bytes plain_msg = wire::encode_lcm(plain, payload);
  EXPECT_LT(plain_msg.size(), msg.size());  // the words exist only if flagged
  auto plain_dec = wire::decode_lcm(plain_msg);
  ASSERT_TRUE(plain_dec.ok());
  EXPECT_EQ(plain_dec.value().header.trace_hi, 0u);
  EXPECT_EQ(plain_dec.value().header.trace_lo, 0u);
  EXPECT_EQ(plain_dec.value().header.trace_parent, 0u);
  EXPECT_EQ(plain_dec.value().payload, payload);
  EXPECT_FALSE(wire::peek_lcm_trace(plain_msg).has_value());
  EXPECT_FALSE(
      wire::peek_nd_trace(
          wire::encode_nd_payload(wire::encode_ip_data(42, plain_msg)))
          .has_value());

  // Non-payload ND kinds and truncated buffers peek to nullopt, not UB.
  wire::NdOpen open;
  open.src_arch = 1;
  EXPECT_FALSE(wire::peek_nd_trace(wire::encode_nd_open(open)).has_value());
  EXPECT_FALSE(
      wire::peek_lcm_trace(BytesView(msg.data(), 16)).has_value());
}

// ---------------------------------------------------------------- the ring

TEST(TraceBuffer, OverwriteOldestAndCountDrops) {
  trace::SpanBuffer buf(8);
  const trace::TraceContext ctx{0xAAu, 0xBBu, 3};
  for (std::uint64_t i = 0; i < 8; ++i) {
    buf.record(ctx, 100 + i, 3, static_cast<std::int64_t>(i),
               static_cast<std::int64_t>(i) + 1, "lcm", "op", "node-x");
  }
  EXPECT_EQ(buf.snapshot().size(), 8u);
  EXPECT_EQ(buf.dropped(), 0u);

  // Four more wrap the ring: the four oldest are gone, each overwrite
  // counted, newest-first survivors intact and in order.
  for (std::uint64_t i = 8; i < 12; ++i) {
    buf.record(ctx, 100 + i, 3, static_cast<std::int64_t>(i),
               static_cast<std::int64_t>(i) + 1, "lcm", "op", "node-x");
  }
  EXPECT_EQ(buf.dropped(), 4u);
  const auto spans = buf.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].span_id, 104 + i);  // oldest first, 100..103 lost
    EXPECT_EQ(spans[i].trace_hi, 0xAAu);
    EXPECT_EQ(spans[i].parent_id, 3u);
    EXPECT_EQ(spans[i].layer, "lcm");
    EXPECT_EQ(spans[i].node, "node-x");
  }

  // Filters.
  EXPECT_EQ(buf.for_trace(0xAA, 0xBB).size(), 8u);
  EXPECT_TRUE(buf.for_trace(1, 2).empty());
  EXPECT_EQ(buf.since(10).size(), 2u);  // start_ns 10 and 11

  // Over-long strings truncate into the fixed slot fields, no overflow.
  buf.record(ctx, 999, 3, 0, 1, "a-very-long-layer-name",
             "an-op-name-well-past-twenty-bytes", "node");
  const auto trunc = buf.snapshot();
  const auto it = std::find_if(trunc.begin(), trunc.end(),
                               [](const trace::Span& s) {
                                 return s.span_id == 999;
                               });
  ASSERT_NE(it, trunc.end());
  EXPECT_LE(it->layer.size(), 12u);
  EXPECT_LE(it->op.size(), 20u);
  EXPECT_EQ(std::string("a-very-long-layer-name").substr(0, it->layer.size()),
            it->layer);

  buf.clear();
  EXPECT_TRUE(buf.snapshot().empty());
}

TEST(TraceBuffer, SamplingModes) {
  // off: the hot-path gate reports disabled and roots open nothing.
  trace::set_sampling(trace::SampleMode::off);
  EXPECT_FALSE(trace::enabled());
  {
    trace::RootSpan root("ali", "send", "n");
    EXPECT_FALSE(root.context().valid());
    EXPECT_FALSE(trace::current().valid());
  }

  // one_in_n: deterministic per-thread cadence — exactly 1 in 4 here.
  {
    SamplingScope sampling(trace::SampleMode::one_in_n, 4);
    EXPECT_TRUE(trace::enabled());
    int sampled = 0;
    for (int i = 0; i < 400; ++i) {
      if (trace::sample_this()) ++sampled;
    }
    EXPECT_EQ(sampled, 100);
  }
  EXPECT_EQ(trace::sampling_mode(), trace::SampleMode::off);

  // always: a root installs a fresh context, restores on destruction, and
  // records itself (parent 0) plus its children into the process buffer.
  SamplingScope sampling;
  trace::TraceContext seen;
  {
    trace::RootSpan root("ali", "request", "n");
    ASSERT_TRUE(root.context().valid());
    seen = trace::current();
    EXPECT_EQ(seen, root.context());
    trace::record_event(seen, "lcm", "deliver", "n");
    {
      trace::RootSpan nested("ali", "send", "n");  // joins, no new root
      EXPECT_FALSE(nested.context().valid());
      EXPECT_EQ(trace::current(), seen);
    }
  }
  EXPECT_FALSE(trace::current().valid());
  const auto spans = trace::spans_for_trace(seen.hi, seen.lo);
  ASSERT_EQ(spans.size(), 2u);
  for (const trace::Span& s : spans) {
    if (s.op == "request") {
      EXPECT_EQ(s.span_id, seen.span);
      EXPECT_EQ(s.parent_id, 0u);
    } else {
      EXPECT_EQ(s.op, "deliver");
      EXPECT_EQ(s.parent_id, seen.span);
    }
  }
  EXPECT_TRUE(trace::find_orphans(spans).empty());
}

// ------------------------------------------------------- the gateway chain

TEST(TraceChain, RequestAcrossAGatewayLeavesACompleteSpanChain) {
  Testbed tb(fabric_seed());
  tb.net("lan-a");
  tb.net("lan-b");
  tb.machine("m1", Arch::vax780, {"lan-a"});
  tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
  tb.machine("m2", Arch::sun3, {"lan-b"});
  ASSERT_TRUE(tb.start_name_server("m1", "lan-a").ok());
  ASSERT_TRUE(tb.add_gateway("gw", "gw1", {"lan-a", "lan-b"}).ok());
  ASSERT_TRUE(tb.finalize().ok());
  auto a = tb.spawn_module("a", "m1", "lan-a").value();
  auto b = tb.spawn_module("b", "m2", "lan-b").value();

  std::jthread echo([&b](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = b->commod().receive(50ms);
      if (in.ok() && in.value().is_request) {
        (void)b->commod().reply(in.value().reply_ctx, in.value().payload);
      }
    }
  });

  auto addr = a->commod().locate("b");
  ASSERT_TRUE(addr.ok());
  // Warm the circuit untraced so the traced request is pure steady state.
  ASSERT_TRUE(a->commod().request(addr.value(), to_bytes("warm"), 5s).ok());

  std::vector<trace::Span> all;
  {
    SamplingScope sampling;
    ASSERT_TRUE(a->commod().request(addr.value(), to_bytes("traced"), 5s).ok());
    // The gateway and b record their reply-leg spans *after* forwarding
    // the reply — i.e. concurrently with request() returning here. Poll
    // the ring until the chain has settled instead of racing those
    // writers; sampling stays on so the late records still land.
    for (int spin = 0; spin < 200; ++spin) {
      all = trace::snapshot_spans();
      std::size_t hops = 0;
      std::set<std::string> seen;
      for (const trace::Span& s : all) {
        if (std::string_view(s.op) == "hop") ++hops;
        seen.insert(s.op);
      }
      if (hops >= 3 && seen.count("fragment") && seen.count("reassemble") &&
          seen.count("deliver") && seen.count("reply") &&
          seen.count("complete")) {
        break;
      }
      std::this_thread::sleep_for(10ms);
    }
  }
  echo.request_stop();

  // Exactly one root: the traced request. (Internal/name-service traffic
  // opens no roots and never stamps the wire — §6.1's recursion exemption.)
  std::vector<trace::Span> roots;
  for (const trace::Span& s : all) {
    if (s.parent_id == 0 && s.trace_hi != 0) roots.push_back(s);
  }
  ASSERT_EQ(roots.size(), 1u);
  const trace::Span root = roots[0];
  EXPECT_EQ(root.layer, "ali");
  EXPECT_EQ(root.op, "request");
  EXPECT_EQ(root.node, "a");

  const auto ops = by_op(all, root.trace_hi, root.trace_lo);
  // The full chain: source hop, gateway relay hop(s), destination deliver,
  // destination reply, source completion — every one a direct child of the
  // root carried on the wire (flat parentage).
  ASSERT_TRUE(ops.count("hop"));
  EXPECT_GE(ops.at("hop").size(), 3u);  // a->gw, gw relay, b's reply leg
  std::set<std::string> hop_nodes;
  for (const trace::Span& s : ops.at("hop")) hop_nodes.insert(s.node);
  EXPECT_TRUE(hop_nodes.count("a"));
  bool gateway_hop = false;
  for (const std::string& n : hop_nodes) {
    if (n != "a" && n != "b") gateway_hop = true;
  }
  EXPECT_TRUE(gateway_hop) << "no relay span from the gateway";

  for (const char* op : {"fragment", "reassemble", "deliver", "reply",
                         "complete"}) {
    ASSERT_TRUE(ops.count(op)) << op;
  }
  EXPECT_EQ(ops.at("deliver").front().node, "b");
  EXPECT_EQ(ops.at("reply").front().node, "b");
  EXPECT_EQ(ops.at("complete").front().node, "a");

  // Parentage and causal completeness.
  std::size_t in_trace = 0;
  for (const trace::Span& s : all) {
    if (s.trace_hi != root.trace_hi || s.trace_lo != root.trace_lo) continue;
    ++in_trace;
    if (s.span_id != root.span_id) {
      EXPECT_EQ(s.parent_id, root.span_id);
    }
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  EXPECT_GE(in_trace, 8u);
  EXPECT_TRUE(trace::find_orphans(all).empty());

  a->stop();
  b->stop();
}

// ------------------------------------------------ chaos + recursive harvest

TEST(TraceChaos, PipelinedRequestsUnderFaultsHarvestComplete) {
  // The acceptance scenario: pipelined requests across a 2-gateway chain
  // with duplication and reordering on the middle network, spans harvested
  // through the DRTS monitor protocol (query_traces — over the NTCS
  // itself), merged, orphan-checked, and rendered as Chrome JSON.
  Testbed tb(fabric_seed());
  tb.net("net-0");
  tb.net("net-1");
  tb.net("net-2");
  tb.machine("m-src", Arch::vax780, {"net-0"});
  tb.machine("m-gw0", Arch::apollo_dn330, {"net-0", "net-1"});
  tb.machine("m-gw1", Arch::apollo_dn330, {"net-1", "net-2"});
  tb.machine("m-dst", Arch::sun3, {"net-2"});
  tb.machine("m-mon", Arch::pdp11_70, {"net-0"});
  ASSERT_TRUE(tb.start_name_server("m-src", "net-0").ok());
  ASSERT_TRUE(tb.add_gateway("gw-0", "m-gw0", {"net-0", "net-1"}).ok());
  ASSERT_TRUE(tb.add_gateway("gw-1", "m-gw1", {"net-1", "net-2"}).ok());
  ASSERT_TRUE(tb.finalize().ok());

  drts::MonitorServer monitor(tb.node_config("", "m-mon", "net-0"));
  ASSERT_TRUE(monitor.start().ok());

  auto a = tb.spawn_module("a", "m-src", "net-0").value();
  auto b = tb.spawn_module("b", "m-dst", "net-2").value();
  std::jthread echo([&b](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = b->commod().receive(50ms);
      if (in.ok() && in.value().is_request) {
        (void)b->commod().reply(in.value().reply_ctx, in.value().payload);
      }
    }
  });
  auto addr = a->commod().locate("b");
  ASSERT_TRUE(addr.ok());
  auto mon_addr = a->commod().locate(drts::kMonitorName);
  ASSERT_TRUE(mon_addr.ok());
  ASSERT_TRUE(a->commod().request(addr.value(), to_bytes("warm"), 5s).ok());

  // Faults on the middle network only: application traffic must cross them
  // both ways; naming and harvest traffic on net-0 stays clean.
  simnet::FaultPlan plan;
  plan.dup_prob = 0.05;
  plan.reorder_prob = 0.05;
  plan.reorder_window = 300us;
  tb.fabric().set_fault_plan(tb.fabric().network_by_name("net-1").value(),
                             plan);

  constexpr int kBatches = 4;
  constexpr int kDepth = 8;
  int issued = 0;
  int delivered = 0;
  {
    SamplingScope sampling;
    for (int batch = 0; batch < kBatches; ++batch) {
      std::vector<Result<RequestTicket>> tickets;
      for (int i = 0; i < kDepth; ++i) {
        tickets.push_back(a->commod().request_async(
            addr.value(), to_bytes("req-" + std::to_string(issued)), 3s));
        ++issued;
      }
      for (auto& t : tickets) {
        if (t.ok() && a->commod().await(t.value()).ok()) ++delivered;
      }
    }
  }
  tb.fabric().clear_faults();
  ASSERT_GT(delivered, issued / 2) << "fault plan collapsed the rig";

  // Recursive harvest: drain the span buffer through the monitor, twice,
  // and merge — the dedup-by-span-ID path a real multi-node overlap hits.
  auto h1 = drts::query_traces(*a, mon_addr.value());
  ASSERT_TRUE(h1.ok());
  auto h2 = drts::query_traces(*a, mon_addr.value());
  ASSERT_TRUE(h2.ok());
  const auto merged = trace::merge_harvests({h1.value(), h2.value()});
  EXPECT_LE(merged.size(), h1.value().size() + h2.value().size());
  ASSERT_FALSE(merged.empty());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].start_ns, merged[i].start_ns);
  }

  // Every delivered request must read back as a complete chain: root,
  // origin + two relay hops, deliver, reply, completion — and no span in
  // the whole harvest may be orphaned.
  EXPECT_TRUE(trace::find_orphans(merged).empty());
  std::set<std::pair<std::uint64_t, std::uint64_t>> traces;
  for (const trace::Span& s : merged) {
    if (s.trace_hi != 0) traces.insert({s.trace_hi, s.trace_lo});
  }
  int complete_chains = 0;
  for (const auto& [hi, lo] : traces) {
    const auto ops = by_op(merged, hi, lo);
    if (!ops.count("complete")) continue;  // an undelivered (timed-out) try
    EXPECT_TRUE(ops.count("request_async"));
    EXPECT_GE(ops.at("hop").size(), 3u);
    EXPECT_TRUE(ops.count("deliver"));
    EXPECT_TRUE(ops.count("reply"));
    ++complete_chains;
  }
  EXPECT_GE(complete_chains, (delivered * 99 + 99) / 100)
      << "delivered=" << delivered << " traces=" << traces.size();

  // Targeted harvest: one trace ID through the by_trace query kind.
  const auto [q_hi, q_lo] = *traces.begin();
  drts::TraceQuery q;
  q.kind = drts::TraceQuery::Kind::by_trace;
  q.trace_hi = q_hi;
  q.trace_lo = q_lo;
  auto one = drts::query_traces(*a, mon_addr.value(), q);
  ASSERT_TRUE(one.ok());
  ASSERT_FALSE(one.value().empty());
  for (const trace::Span& s : one.value()) {
    EXPECT_EQ(s.trace_hi, q_hi);
    EXPECT_EQ(s.trace_lo, q_lo);
  }

  // The merged timeline renders as Chrome trace-event JSON and survives a
  // write/read round trip.
  const std::string json = trace::to_chrome_json(merged);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  const std::string path =
      ::testing::TempDir() + "trace_test_timeline.json";
  ASSERT_TRUE(trace::write_chrome_json(merged, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<std::size_t>(std::ftell(f)), json.size());
  std::fclose(f);
  std::remove(path.c_str());

  echo.request_stop();
  a->stop();
  b->stop();
  monitor.stop();
}

}  // namespace
}  // namespace ntcs::core
