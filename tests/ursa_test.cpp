// Tests for the URSA mini information-retrieval system (S12): the paper's
// motivating application, run over the full NTCS across heterogeneous
// machines and multiple networks.
#include <gtest/gtest.h>

#include "core/testbed.h"
#include "drts/process_control.h"
#include "ursa/query.h"
#include "ursa/servers.h"

namespace ursa {
namespace {

using namespace std::chrono_literals;
using ntcs::convert::Arch;
using ntcs::core::Testbed;
using ntcs::drts::ProcessController;

TEST(Corpus, DeterministicGeneration) {
  auto a = Corpus::generate(20, 42);
  auto b = Corpus::generate(20, 42);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.documents()[i].text, b.documents()[i].text);
  }
  auto c = Corpus::generate(20, 43);
  EXPECT_NE(a.documents()[0].text, c.documents()[0].text);
}

TEST(Corpus, FindById) {
  auto c = Corpus::generate(10, 1);
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->id, 5u);
  EXPECT_EQ(c.find(99), nullptr);
}

TEST(Corpus, TokenizeNormalises) {
  auto tokens = tokenize("Hello, World! foo-bar BAZ42qux");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foo");
  EXPECT_EQ(tokens[3], "bar");
  EXPECT_EQ(tokens[4], "baz");
  EXPECT_EQ(tokens[5], "qux");
}

TEST(Index, PostingsReflectTermFrequency) {
  Document d1{1, "alpha beta", "alpha alpha gamma"};
  Document d2{2, "beta", "beta beta delta"};
  InvertedIndex idx;
  idx.add_document(d1);
  idx.add_document(d2);
  EXPECT_EQ(idx.doc_count(), 2u);
  const auto& alpha = idx.postings("alpha");
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_EQ(alpha[0].doc, 1u);
  EXPECT_EQ(alpha[0].tf, 3u);
  const auto& beta = idx.postings("beta");
  ASSERT_EQ(beta.size(), 2u);
  EXPECT_TRUE(idx.postings("nonexistent").empty());
}

TEST(Query, ParseConjunctionAndDisjunction) {
  auto q = parse_query("information retrieval or document indexing");
  ASSERT_EQ(q.groups.size(), 2u);
  EXPECT_EQ(q.groups[0].terms,
            (std::vector<std::string>{"information", "retrieval"}));
  EXPECT_EQ(q.groups[1].terms,
            (std::vector<std::string>{"document", "indexing"}));
  EXPECT_EQ(q.distinct_terms().size(), 4u);
}

TEST(Query, ParseEdgeCases) {
  EXPECT_TRUE(parse_query("").empty());
  EXPECT_TRUE(parse_query("or or or").empty());
  auto q = parse_query("or alpha or");
  ASSERT_EQ(q.groups.size(), 1u);
  EXPECT_EQ(q.groups[0].terms, (std::vector<std::string>{"alpha"}));
  // Duplicate terms collapse in distinct_terms but stay in groups.
  auto q2 = parse_query("x x or x");
  EXPECT_EQ(q2.distinct_terms().size(), 1u);
  EXPECT_EQ(q2.groups[0].terms.size(), 2u);
}

TEST(Query, IdfWeighting) {
  EXPECT_DOUBLE_EQ(idf(100, 0), 0.0);
  EXPECT_GT(idf(100, 1), idf(100, 50));   // rare beats common
  EXPECT_GT(idf(1000, 10), idf(100, 10)); // bigger corpus, higher weight
}

TEST(Query, EvaluateDisjunctionIsUnion) {
  std::map<std::string, std::vector<Posting>> postings;
  postings["a"] = {{1, 2}, {2, 1}};
  postings["b"] = {{3, 4}};
  Query q = parse_query("a or b");
  auto hits = evaluate_query(q, postings, 10, 10);
  ASSERT_EQ(hits.size(), 3u);  // union of both groups
}

TEST(Query, EvaluateConjunctionIsIntersection) {
  std::map<std::string, std::vector<Posting>> postings;
  postings["a"] = {{1, 2}, {2, 1}};
  postings["b"] = {{2, 4}, {3, 1}};
  Query q = parse_query("a b");
  auto hits = evaluate_query(q, postings, 10, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 2u);
  EXPECT_NEAR(hits[0].score, 1 * idf(10, 2) + 4 * idf(10, 2), 1e-12);
}

TEST(Query, RareTermOutranksCommonTerm) {
  // doc 1 holds the rare term once; doc 2 holds the common term three
  // times. With idf weighting the rare match must win.
  std::map<std::string, std::vector<Posting>> postings;
  postings["rare"] = {{1, 1}};
  std::vector<Posting> common;
  for (std::uint64_t d = 2; d <= 60; ++d) {
    common.push_back({d, d == 2 ? 3u : 1u});
  }
  postings["common"] = common;
  Query q = parse_query("rare or common");
  auto hits = evaluate_query(q, postings, 100, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);  // the rare match ranks first
}

TEST(Query, TopKTruncates) {
  std::map<std::string, std::vector<Posting>> postings;
  for (std::uint64_t d = 1; d <= 20; ++d) postings["t"].push_back({d, 1});
  auto hits = evaluate_query(parse_query("t"), postings, 20, 5);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(Protocol, RequestsRoundTrip) {
  auto r1 = decode_request(encode_postings_request("term")).value();
  EXPECT_EQ(r1.op, Op::postings);
  EXPECT_EQ(r1.term, "term");
  auto r2 = decode_request(encode_get_doc_request(17)).value();
  EXPECT_EQ(r2.op, Op::get_doc);
  EXPECT_EQ(r2.doc, 17u);
  auto r3 = decode_request(encode_search_request("a b", 5)).value();
  EXPECT_EQ(r3.op, Op::search);
  EXPECT_EQ(r3.query, "a b");
  EXPECT_EQ(r3.k, 5u);
  auto r4 = decode_request(encode_stats_request()).value();
  EXPECT_EQ(r4.op, Op::stats);
}

TEST(Protocol, ResponsesRoundTrip) {
  std::vector<Posting> postings = {{1, 3}, {7, 1}};
  auto p = decode_postings_response(encode_postings_response(postings));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), postings);

  Document doc{9, "a title", "the text body"};
  auto d = decode_doc_response(encode_doc_response(doc));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().id, 9u);
  EXPECT_EQ(d.value().title, "a title");
  EXPECT_EQ(d.value().text, "the text body");

  std::vector<SearchHit> hits = {{3, 8.0, "t3"}, {1, 2.5, "t1"}};
  auto h = decode_search_response(encode_search_response(hits));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value(), hits);

  auto err = decode_postings_response(
      encode_error(ntcs::Errc::not_found, "missing"));
  EXPECT_EQ(err.code(), ntcs::Errc::not_found);
}

/// Full deployment: NS + 2 LANs + gateway; index on a Sun on lan-b, docs on
/// an Apollo on lan-b, search on a VAX on lan-a, host on lan-a.
struct UrsaRig {
  Testbed tb;
  ProcessController pc{tb};
  std::shared_ptr<Corpus> corpus;
  std::unique_ptr<ntcs::core::Node> host_node;

  UrsaRig() {
    tb.net("lan-a");
    tb.net("lan-b");
    tb.machine("vax1", Arch::vax780, {"lan-a"});
    tb.machine("gwbox", Arch::apollo_dn330, {"lan-a", "lan-b"});
    tb.machine("sun1", Arch::sun3, {"lan-b"});
    tb.machine("apollo1", Arch::apollo_dn330, {"lan-b"});
    EXPECT_TRUE(tb.start_name_server("vax1", "lan-a").ok());
    EXPECT_TRUE(tb.add_gateway("gw", "gwbox", {"lan-a", "lan-b"}).ok());
    EXPECT_TRUE(tb.finalize().ok());

    UrsaPlacement placement;
    placement.index_machine = "sun1";
    placement.index_net = "lan-b";
    placement.doc_machine = "apollo1";
    placement.doc_net = "lan-b";
    placement.search_machine = "vax1";
    placement.search_net = "lan-a";
    auto c = spawn_ursa(pc, placement, 100, 7);
    EXPECT_TRUE(c.ok());
    corpus = c.value();
    host_node = tb.spawn_module("host", "vax1", "lan-a").value();
  }
  ~UrsaRig() {
    if (host_node) host_node->stop();
  }
};

TEST(UrsaSystem, EndToEndSearchAndFetch) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());

  // Query with the corpus's most common word: must produce hits.
  const std::string common = rig.corpus->vocabulary().front();
  auto hits = host.search(common, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits.value().empty());
  EXPECT_LE(hits.value().size(), 5u);
  // Scores are ranked non-increasing.
  for (std::size_t i = 1; i < hits.value().size(); ++i) {
    EXPECT_GE(hits.value()[i - 1].score, hits.value()[i].score);
  }
  // Fetch the top document and verify the term really occurs in it.
  auto doc = host.fetch(hits.value()[0].doc);
  ASSERT_TRUE(doc.ok());
  const auto tokens = tokenize(doc.value().title + " " + doc.value().text);
  bool found = false;
  for (const auto& t : tokens) {
    if (t == common) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(UrsaSystem, SearchResultsMatchLocalIndex) {
  // The distributed answer must equal a local evaluation of the same query
  // over the same corpus.
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());

  InvertedIndex local;
  local.add_corpus(*rig.corpus);
  const std::string term = rig.corpus->vocabulary()[3];

  auto hits = host.search(term, 1000);
  ASSERT_TRUE(hits.ok());
  const auto& expected = local.postings(term);
  ASSERT_EQ(hits.value().size(), expected.size());
  // Scores are tf·idf with idf from the corpus size and document freq.
  const double w = idf(rig.corpus->size(), expected.size());
  double total_remote = 0, total_local = 0;
  for (const auto& h : hits.value()) total_remote += h.score;
  for (const auto& p : expected) total_local += p.tf * w;
  EXPECT_NEAR(total_remote, total_local, 1e-9);
}

TEST(UrsaSystem, MultiTermQueryIsConjunctive) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  const std::string t1 = rig.corpus->vocabulary()[0];
  const std::string t2 = rig.corpus->vocabulary()[1];
  auto both = host.search(t1 + " " + t2, 1000);
  ASSERT_TRUE(both.ok());
  InvertedIndex local;
  local.add_corpus(*rig.corpus);
  // Every hit must appear in both postings lists.
  for (const auto& h : both.value()) {
    bool in1 = false, in2 = false;
    for (const auto& p : local.postings(t1)) in1 |= p.doc == h.doc;
    for (const auto& p : local.postings(t2)) in2 |= p.doc == h.doc;
    EXPECT_TRUE(in1 && in2) << "doc " << h.doc;
  }
}

TEST(UrsaSystem, OrQueryUnionsGroups) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  const std::string t1 = rig.corpus->vocabulary()[2];
  const std::string t2 = rig.corpus->vocabulary()[4];
  auto only1 = host.search(t1, 1000);
  auto only2 = host.search(t2, 1000);
  auto either = host.search(t1 + " or " + t2, 1000);
  ASSERT_TRUE(only1.ok());
  ASSERT_TRUE(only2.ok());
  ASSERT_TRUE(either.ok());
  // The disjunction covers every document of both single-term queries.
  for (const auto& lists : {only1.value(), only2.value()}) {
    for (const auto& h : lists) {
      bool found = false;
      for (const auto& e : either.value()) found |= e.doc == h.doc;
      EXPECT_TRUE(found) << "doc " << h.doc;
    }
  }
  EXPECT_GE(either.value().size(),
            std::max(only1.value().size(), only2.value().size()));
}

TEST(UrsaSystem, UnknownTermYieldsNoHits) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  auto hits = host.search("zzzzunknownterm", 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits.value().empty());
}

TEST(UrsaSystem, FetchUnknownDocFails) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  EXPECT_EQ(host.fetch(999999).code(), ntcs::Errc::not_found);
}

TEST(UrsaSystem, IndexServerRelocationMidSession) {
  // The URSA testbed requirement: "dynamically add, modify, or replace
  // system modules, while in operation" (§1.2). Move the index server to
  // another machine between two queries; the search server keeps using
  // the UAdd it resolved first.
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  const std::string term = rig.corpus->vocabulary().front();
  auto before = host.search(term, 10);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(rig.pc.relocate(std::string(kIndexServerName), "apollo1",
                              "lan-b")
                  .ok());

  auto after = host.search(term, 10);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
}

TEST(UrsaSystem, DynamicDocumentAdditionIsSearchable) {
  // §1.2: the testbed must support modifying the system while in
  // operation — here at the application level: a document added at run
  // time is immediately stored, indexed and retrievable.
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  auto before = host.search("zebrafish", 10);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().empty());

  auto id = host.add_document("zebrafish studies",
                              "the zebrafish is a zebrafish of note");
  ASSERT_TRUE(id.ok());
  EXPECT_GT(id.value(), rig.corpus->size());

  auto after = host.search("zebrafish", 10);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), 1u);
  EXPECT_EQ(after.value()[0].doc, id.value());
  // tf 3 (title 1 + text 2), idf from the corpus size the search server
  // cached at its first query (pre-addition) and df = 1.
  EXPECT_NEAR(after.value()[0].score, 3.0 * idf(rig.corpus->size(), 1),
              1e-9);

  auto doc = host.fetch(id.value());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().title, "zebrafish studies");
}

TEST(UrsaSystem, AddedDocumentsCountInStats) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  ASSERT_TRUE(host.add_document("t", "one two three").ok());
  ASSERT_TRUE(host.add_document("t2", "four five").ok());
  // Two distinct ids were assigned.
  auto id3 = host.add_document("t3", "six");
  ASSERT_TRUE(id3.ok());
  EXPECT_EQ(id3.value(), rig.corpus->size() + 3);
}

TEST(UrsaSystem, StatsCountServedRequests) {
  UrsaRig rig;
  UrsaHost host(*rig.host_node);
  ASSERT_TRUE(host.connect().ok());
  (void)host.search(rig.corpus->vocabulary().front(), 3);
  auto stats = host.index_stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().served, 1u);
  EXPECT_GT(stats.value().items_held, 0u);  // index terms
}

}  // namespace
}  // namespace ursa
