// Unit tests for the NTCS wire protocol (S4): fragmentation, ND open
// exchange, IP envelopes, LCM headers — including malformed-input fuzzing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "convert/shift.h"
#include "core/wire/frames.h"

namespace ntcs::core::wire {
namespace {

TEST(Fragment, SmallMessageIsOneFrame) {
  Bytes msg = to_bytes("small");
  auto frames = fragment(msg, 1024);
  ASSERT_EQ(frames.size(), 1u);
  Reassembler r;
  auto done = r.feed(frames[0]);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().complete);
  EXPECT_EQ(r.take(), msg);
}

TEST(Fragment, EmptyMessageStillFrames) {
  auto frames = fragment({}, 1024);
  ASSERT_EQ(frames.size(), 1u);
  Reassembler r;
  EXPECT_TRUE(r.feed(frames[0]).value().complete);
  EXPECT_TRUE(r.take().empty());
}

TEST(Fragment, ExactMtuBoundary) {
  constexpr std::size_t kMtu = 128;
  // A first frame carries an 8-byte header (frag word + total length).
  Bytes msg(kMtu - 8, 0xAA);  // exactly one chunk
  auto frames = fragment(msg, kMtu);
  EXPECT_EQ(frames.size(), 1u);
  Bytes msg2(kMtu - 8 + 1, 0xBB);  // one byte over
  EXPECT_EQ(fragment(msg2, kMtu).size(), 2u);
}

TEST(Fragment, LargeMessageRoundTrip) {
  Rng rng(5);
  Bytes msg(50000);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  auto frames = fragment(msg, 4096);
  EXPECT_GT(frames.size(), 10u);
  for (const auto& f : frames) EXPECT_LE(f.size(), 4096u);
  Reassembler r;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto done = r.feed(frames[i]);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done.value().complete, i + 1 == frames.size());
    EXPECT_FALSE(done.value().dropped);
  }
  EXPECT_EQ(r.take(), msg);
}

TEST(Fragment, LengthMismatchRejected) {
  Bytes frame;
  convert::ShiftWriter w(frame);
  w.put_u32(make_frag_word(false, 10));  // claims 10 bytes
  w.put_raw(std::string_view("abc"));    // carries 3
  Reassembler r;
  EXPECT_EQ(r.feed(frame).code(), Errc::bad_message);
}

TEST(Fragment, WordHelpers) {
  const auto w = make_frag_word(true, 12345);
  EXPECT_TRUE(frag_more(w));
  EXPECT_EQ(frag_len(w), 12345u);
  EXPECT_EQ(frag_seq(w), 0u);
  const auto w2 = make_frag_word(false, 0);
  EXPECT_FALSE(frag_more(w2));
  EXPECT_EQ(frag_len(w2), 0u);
  // The sequence field coexists with the flag and length bits and wraps
  // at 7 bits; the length field is 23 bits wide.
  const auto w3 = make_frag_word(true, kFragLenMask, 130);
  EXPECT_TRUE(frag_more(w3));
  EXPECT_EQ(frag_len(w3), kFragLenMask);
  EXPECT_EQ(frag_seq(w3), 130u & kFragSeqMask);
  EXPECT_FALSE(frag_first(w3));
  // The first-fragment flag is independent of the other fields.
  const auto w4 = make_frag_word(false, 7, 5, /*first=*/true);
  EXPECT_TRUE(frag_first(w4));
  EXPECT_FALSE(frag_more(w4));
  EXPECT_EQ(frag_len(w4), 7u);
  EXPECT_EQ(frag_seq(w4), 5u);
}

TEST(Fragment, SequenceNumbersRunAcrossMessages) {
  std::uint32_t seq = 126;  // about to wrap
  auto f1 = fragment(to_bytes("one"), 1024, seq);
  auto f2 = fragment(to_bytes("two"), 1024, seq);
  ASSERT_EQ(f1.size(), 1u);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(seq, 0u);  // 126 -> 127 -> wrap to 0
  Reassembler r;
  // Pre-position the receiver at seq 125 by feeding a synthetic stream.
  std::uint32_t warm = 0;
  Bytes msg = to_bytes("warm");
  for (int i = 0; i < 126; ++i) {
    auto f = fragment(msg, 1024, warm);
    ASSERT_TRUE(r.feed(f[0]).ok());
    r.take();
  }
  auto a = r.feed(f1[0]);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().complete);
  EXPECT_FALSE(a.value().dropped);
  EXPECT_EQ(r.take(), to_bytes("one"));
  auto b = r.feed(f2[0]);  // crosses the 127 -> 0 wrap
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value().complete);
  EXPECT_FALSE(b.value().dropped);
  EXPECT_EQ(r.take(), to_bytes("two"));
}

TEST(Fragment, DuplicateFrameIsDropped) {
  std::uint32_t seq = 0;
  auto frames = fragment(to_bytes("hello"), 1024, seq);
  ASSERT_EQ(frames.size(), 1u);
  Reassembler r;
  EXPECT_TRUE(r.feed(frames[0]).value().complete);
  EXPECT_EQ(r.take(), to_bytes("hello"));
  auto again = r.feed(frames[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().dropped);
  EXPECT_FALSE(again.value().complete);
  EXPECT_EQ(r.pending_bytes(), 0u);
}

TEST(Fragment, StaleFrameFromBehindIsDropped) {
  std::uint32_t seq = 0;
  Bytes msg = to_bytes("x");
  auto f0 = fragment(msg, 1024, seq);
  auto f1 = fragment(msg, 1024, seq);
  auto f2 = fragment(msg, 1024, seq);
  Reassembler r;
  EXPECT_TRUE(r.feed(f0[0]).value().complete);
  r.take();
  EXPECT_TRUE(r.feed(f1[0]).value().complete);
  r.take();
  EXPECT_TRUE(r.feed(f2[0]).value().complete);
  r.take();
  // A late copy of frame 1 (overtaken on the wire) must not be delivered.
  auto late = r.feed(f1[0]);
  ASSERT_TRUE(late.ok());
  EXPECT_TRUE(late.value().dropped);
}

TEST(Fragment, GapDiscardsPartialMessageAndResyncs) {
  // A three-fragment message loses its middle frame; the trailing frame
  // resyncs the stream, its bytes are discarded (no first frame claims
  // them — no garbage ever reaches ND), and the next message comes
  // through intact.
  constexpr std::size_t kMtu = 16;  // 8-byte first chunk, 12-byte rest
  std::uint32_t seq = 0;
  Bytes big(30, 0xCD);
  auto frames = fragment(big, kMtu, seq);
  ASSERT_EQ(frames.size(), 3u);
  Reassembler r;
  EXPECT_FALSE(r.feed(frames[0]).value().complete);
  // frames[1] lost.
  auto tail = r.feed(frames[2]);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail.value().resynced);  // partial accumulation discarded
  EXPECT_TRUE(tail.value().orphan);   // continuation with no head: dropped
  EXPECT_FALSE(tail.value().complete);
  EXPECT_EQ(r.pending_bytes(), 0u);
  auto next = fragment(to_bytes("fresh"), kMtu, seq);
  ASSERT_EQ(next.size(), 1u);
  auto got = r.feed(next[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().complete);
  EXPECT_FALSE(got.value().resynced);
  EXPECT_EQ(r.take(), to_bytes("fresh"));
}

TEST(Fragment, InterruptedMessageRestartsAtNextFirstFrame) {
  // The sender abandons a message mid-stream (its tail was lost and
  // retransmission starts a fresh message with consecutive sequence
  // numbers): the new first frame evicts the stale partial.
  constexpr std::size_t kMtu = 16;
  std::uint32_t seq = 0;
  auto partial = fragment(Bytes(30, 0x11), kMtu, seq);
  ASSERT_EQ(partial.size(), 3u);
  Reassembler r;
  EXPECT_FALSE(r.feed(partial[0]).value().complete);
  EXPECT_FALSE(r.feed(partial[1]).value().complete);
  // partial[2] never arrives; instead a new message starts at seq 3.
  auto fresh = fragment(to_bytes("clean"), kMtu, seq);
  ASSERT_EQ(fresh.size(), 1u);
  auto got = r.feed(fresh[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().resynced);  // old partial thrown away
  EXPECT_TRUE(got.value().complete);
  EXPECT_EQ(r.take(), to_bytes("clean"));
}

TEST(Fragment, TotalLengthMismatchDropsMessage) {
  // A corrupted chunk-length that still passes the per-frame size check
  // shows up as a total-length mismatch at end of message; the message
  // must be dropped, not delivered truncated.
  std::uint32_t seq = 0;
  auto frames = fragment(to_bytes("abcdef"), 1024, seq);
  ASSERT_EQ(frames.size(), 1u);
  // Rewrite the announced total (bytes 4..7 of the first frame header).
  Bytes evil = frames[0];
  evil[7] = static_cast<std::uint8_t>(evil[7] + 1);
  Reassembler r;
  auto fed = r.feed(evil);
  ASSERT_TRUE(fed.ok());
  EXPECT_FALSE(fed.value().complete);
  EXPECT_TRUE(fed.value().resynced);
  EXPECT_EQ(r.pending_bytes(), 0u);
  // The stream recovers at the next message.
  auto next = fragment(to_bytes("ok"), 1024, seq);
  auto got = r.feed(next[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().complete);
  EXPECT_EQ(r.take(), to_bytes("ok"));
}

TEST(NdFrames, OpenRoundTrip) {
  NdOpen open;
  open.src_uadd = UAdd::temporary(42);
  open.src_arch = 3;
  open.src_phys = "tcp:vax1:5001";
  auto bytes = encode_nd_open(open);
  auto back = decode_nd(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().kind, NdKind::open);
  EXPECT_EQ(back.value().open.src_uadd, open.src_uadd);
  EXPECT_TRUE(back.value().open.src_uadd.is_temporary());
  EXPECT_EQ(back.value().open.src_arch, 3u);
  EXPECT_EQ(back.value().open.src_phys, "tcp:vax1:5001");
}

TEST(NdFrames, OpenAckRoundTrip) {
  NdOpenAck ack;
  ack.uadd = UAdd::permanent(1001);
  ack.arch = 1;
  auto back = decode_nd(encode_nd_open_ack(ack));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().kind, NdKind::open_ack);
  EXPECT_EQ(back.value().ack.uadd, ack.uadd);
}

TEST(NdFrames, PayloadCarriesBody) {
  Bytes body = to_bytes("ip envelope here");
  auto back = decode_nd(encode_nd_payload(body));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().kind, NdKind::payload);
  EXPECT_EQ(back.value().body, body);
}

TEST(NdFrames, BadMagicRejected) {
  Bytes bytes = encode_nd_payload(to_bytes("x"));
  bytes[0] ^= 0xFF;
  EXPECT_EQ(decode_nd(bytes).code(), Errc::bad_message);
}

TEST(NdFrames, BadVersionRejected) {
  Bytes bytes = encode_nd_payload(to_bytes("x"));
  bytes[7] ^= 0x01;  // low byte of the version word
  EXPECT_EQ(decode_nd(bytes).code(), Errc::bad_message);
}

TEST(IpFrames, DataRoundTrip) {
  auto env = decode_ip(encode_ip_data(777, to_bytes("lcm message")));
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env.value().kind, IpKind::data);
  EXPECT_EQ(env.value().ivc, 777u);
  EXPECT_EQ(to_string(env.value().body), "lcm message");
}

TEST(IpFrames, ExtendRoundTrip) {
  ExtendBody body;
  body.final_uadd = UAdd::permanent(1234);
  body.route = {{"lan-b", "tcp:gw2:5003"}, {"lan-c", "tcp:mc:5004"}};
  auto env = decode_ip(encode_ip_extend(9, body));
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env.value().kind, IpKind::extend);
  EXPECT_EQ(env.value().extend.final_uadd, body.final_uadd);
  ASSERT_EQ(env.value().extend.route.size(), 2u);
  EXPECT_EQ(env.value().extend.route[0].net, "lan-b");
  EXPECT_EQ(env.value().extend.route[1].phys, "tcp:mc:5004");
}

TEST(IpFrames, ExtendEmptyRoute) {
  ExtendBody body;
  body.final_uadd = UAdd::permanent(1);
  auto env = decode_ip(encode_ip_extend(3, body));
  ASSERT_TRUE(env.ok());
  EXPECT_TRUE(env.value().extend.route.empty());
}

TEST(IpFrames, ExtendFailCarriesError) {
  auto env = decode_ip(encode_ip_extend_fail(
      5, static_cast<std::uint32_t>(Errc::no_route), "no gateway"));
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env.value().kind, IpKind::extend_fail);
  EXPECT_EQ(env.value().errc, static_cast<std::uint32_t>(Errc::no_route));
  EXPECT_EQ(env.value().text, "no gateway");
}

TEST(IpFrames, ControlMessagesRoundTrip) {
  EXPECT_EQ(decode_ip(encode_ip_extend_ok(8)).value().kind, IpKind::extend_ok);
  EXPECT_EQ(decode_ip(encode_ip_teardown(8)).value().kind, IpKind::teardown);
  EXPECT_EQ(decode_ip(encode_ip_teardown(8)).value().ivc, 8u);
}

TEST(LcmFrames, HeaderRoundTrip) {
  LcmHeader h;
  h.kind = LcmKind::request;
  h.flags = kLcmFlagInternal;
  h.src = UAdd::permanent(1001);
  h.dst = UAdd::permanent(1);
  h.req_id = 42;
  h.mode = 1;
  h.src_arch = 2;
  Bytes payload = to_bytes("body");
  auto back = decode_lcm(encode_lcm(h, payload));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().header.kind, LcmKind::request);
  EXPECT_EQ(back.value().header.flags, kLcmFlagInternal);
  EXPECT_EQ(back.value().header.src, h.src);
  EXPECT_EQ(back.value().header.dst, h.dst);
  EXPECT_EQ(back.value().header.req_id, 42u);
  EXPECT_EQ(back.value().header.mode, 1u);
  EXPECT_EQ(back.value().header.src_arch, 2u);
  EXPECT_EQ(back.value().payload, payload);
}

TEST(LcmFrames, AllKindsRoundTrip) {
  for (LcmKind kind : {LcmKind::data, LcmKind::request, LcmKind::reply,
                       LcmKind::dgram}) {
    LcmHeader h;
    h.kind = kind;
    auto back = decode_lcm(encode_lcm(h, {}));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().header.kind, kind);
  }
}

TEST(LcmFrames, UnknownKindRejected) {
  LcmHeader h;
  h.kind = LcmKind::data;
  Bytes bytes = encode_lcm(h, {});
  bytes[3] = 99;  // low byte of the kind word
  EXPECT_EQ(decode_lcm(bytes).code(), Errc::bad_message);
}

TEST(Fuzz, TruncationsNeverCrash) {
  // Every prefix of every valid message must decode to an error or a
  // value — never crash or read out of bounds.
  NdOpen open;
  open.src_uadd = UAdd::permanent(5);
  open.src_arch = 1;
  open.src_phys = "tcp:m:1";
  ExtendBody eb;
  eb.final_uadd = UAdd::permanent(9);
  eb.route = {{"n1", "p1"}, {"n2", "p2"}};
  LcmHeader lh;
  lh.kind = LcmKind::reply;
  const std::vector<Bytes> messages = {
      encode_nd_open(open),
      encode_nd_open_ack({UAdd::permanent(2), 0}),
      encode_nd_payload(to_bytes("xyz")),
      encode_ip_extend(4, eb),
      encode_ip_data(4, to_bytes("d")),
      encode_lcm(lh, to_bytes("payload")),
  };
  for (const Bytes& msg : messages) {
    for (std::size_t cut = 0; cut < msg.size(); ++cut) {
      Bytes prefix(msg.begin(), msg.begin() + static_cast<long>(cut));
      (void)decode_nd(prefix);
      (void)decode_ip(prefix);
      (void)decode_lcm(prefix);
    }
  }
  SUCCEED();
}

TEST(Fuzz, RandomBytesNeverCrash) {
  Rng rng(31337);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)decode_nd(junk);
    (void)decode_ip(junk);
    (void)decode_lcm(junk);
    Reassembler r;
    (void)r.feed(junk);
  }
  SUCCEED();
}

TEST(Fuzz, BitFlipsNeverCrash) {
  ExtendBody eb;
  eb.final_uadd = UAdd::permanent(9);
  eb.route = {{"net-with-a-longer-name", "tcp:machine:12345"}};
  const Bytes base = encode_ip_extend(11, eb);
  Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = base;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    (void)decode_ip(mutated);
  }
  SUCCEED();
}

}  // namespace
}  // namespace ntcs::core::wire
